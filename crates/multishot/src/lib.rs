//! **Multi-shot TetraBFT** — the pipelined, chained extension of Basic
//! TetraBFT (Section 6 of the paper): the first detailed pipelined protocol
//! in the unauthenticated setting.
//!
//! Blocks are indexed by slots; each slot has a pre-determined leader that
//! appends a block to the previous slot's block. One `vote` message per slot
//! carries **four roles at once**: a vote for slot `s` is simultaneously
//! `vote-1` for slot `s`, `vote-2` for slot `s−1`, `vote-3` for `s−2`, and
//! `vote-4` for `s−3` (each role endorsing the corresponding ancestor of the
//! voted block). A block is *notarized* on a quorum of votes; the first of
//! four consecutively notarized blocks is *finalized* along with its entire
//! prefix.
//!
//! In the good case the pipeline commits **one block per message delay** —
//! five times the throughput of sequentially repeated single-shot instances
//! — and uses only two message types (proposals and votes); suggest/proof
//! and view-change traffic appears *only* when recovering from a faulty
//! leader or asynchrony, the advantage over pipelined IT-HS highlighted in
//! Section 1.2.
//!
//! # Examples
//!
//! A four-node chain finalizing its first blocks:
//!
//! ```
//! use tetrabft::Params;
//! use tetrabft_multishot::MultiShotNode;
//! use tetrabft_sim::{LinkPolicy, SimBuilder};
//! use tetrabft_types::Config;
//!
//! let cfg = Config::new(4)?;
//! let mut sim = SimBuilder::new(4)
//!     .policy(LinkPolicy::synchronous(1))
//!     .build(|id| MultiShotNode::new(cfg, Params::new(100), id));
//! sim.run_until(tetrabft_sim::Time(20));
//! // The first finalization lands at 5 message delays, then one per delay.
//! let mine: Vec<_> = sim
//!     .outputs()
//!     .iter()
//!     .filter(|o| o.node == tetrabft_types::NodeId(0))
//!     .collect();
//! assert!(mine.len() >= 10);
//! assert_eq!(mine[0].time.0, 5);
//! assert_eq!(mine[1].time.0 - mine[0].time.0, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod instance;
mod mempool;
mod msg;
mod node;
mod shard;
mod store;
mod txn;

pub use block::{Block, BlockHash, GENESIS_HASH};
pub use instance::SlotInstance;
pub use mempool::{Mempool, SubmitError};
pub use msg::v1 as wire_v1;
pub use msg::MsMessage;
pub use node::{Finalized, MultiShotNode, SLOT_WINDOW};
pub use shard::{FinalizedMerge, GlobalFinalized, ShardSpec, ShardedSim};
pub use store::BlockStore;
pub use txn::{RawBytes, Transaction, Tx, TxCheck, TxId};
