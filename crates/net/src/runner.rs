//! Drives one protocol state machine over real sockets and timers — the
//! reactor-backed TCP [`Transport`] underneath the shared
//! [`tetrabft_engine::Engine`] loop.
//!
//! Each node runs exactly **two** threads, independent of cluster size and
//! client count:
//!
//! * the **reactor** (`reactor.rs`): one readiness-polled event loop
//!   owning the listener, every inbound peer/client connection, and every
//!   supervised outbound link;
//! * the **engine loop** (this module): drains the node's single event
//!   channel (deliveries, due timers, client submissions), steps the
//!   engine in bounded batches, and keeps the wall-clock timer heap
//!   locally — armings never cross a thread.
//!
//! Outbound messages are staged per event batch: each wakeup drains every
//! already-queued event (bounded by `MAX_BATCH`) through the engine's
//! `*_buffered` entry points, the transport frames each message once and
//! parks it in a per-peer outbox, and one [`Transport::flush`] at the end
//! of the batch hands each peer's staged frames to the reactor in a single
//! channel operation plus one poller wakeup.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use polling::Poller;
use tetrabft_engine::{Dest, Engine, Node, Submitter, Time, TimerId, Transport};
use tetrabft_sim::LinkPlan;
use tetrabft_types::NodeId;
use tetrabft_wire::frame::encode_frame_into;
use tetrabft_wire::{Wire, Writer};

use crate::link::LinkSetup;
use crate::reactor::{run_reactor, ReactorConfig, SubmitCodec};
use crate::topology::{NetError, Topology};

/// Internal events multiplexed into the node's single-threaded loop.
/// (Timer firings no longer appear here: the engine loop owns its timer
/// heap outright, so a due timer is a heap pop, not a channel message.)
pub(crate) enum Event<M, R> {
    Deliver { from: NodeId, msg: M },
    Submit(R),
}

/// An armed timer in the engine loop's local deadline heap.
type Arming = (Instant, u64, TimerId);

/// A spawned node: its stop handle plus the event channel feeding its
/// engine mux (kept internal; submitters wrap it in a [`SubmitHandle`]).
type Spawned<M, R> = (NodeHandle, mpsc::Sender<Event<M, R>>);

/// Frames staged for one peer, handed to the reactor on flush.
type Batch = Vec<Arc<Vec<u8>>>;

/// How many queued events one wakeup may drain before it must seal:
/// bounds both worst-case flush latency and how long persisted state can
/// trail the newest processed input.
const MAX_BATCH: usize = 64;

/// Upper bound on one engine-loop wait, so the stop flag is noticed
/// promptly even on an idle node.
const ENGINE_POLL: Duration = Duration::from_millis(20);

/// Handle to a running node.
///
/// The node's event loop stops when the handle is aborted or dropped; its
/// reactor unwinds with it, closing every socket it owns.
#[derive(Debug)]
pub struct NodeHandle {
    stop: Arc<AtomicBool>,
}

impl NodeHandle {
    /// Stops the node.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.abort();
    }
}

/// A client's way into a running node's engine mux: submissions travel the
/// same event channel as deliveries and timer firings.
///
/// Admission happens on the node's own thread; a transaction the mempool
/// refuses (full, oversized, duplicate) is dropped there — at the TCP
/// boundary backpressure is best-effort, while in-process embedders get
/// the typed error from the node's own submit API.
pub struct SubmitHandle<R> {
    send: Box<dyn Fn(R) -> Result<(), SubmitClosed> + Send>,
}

impl<R> std::fmt::Debug for SubmitHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitHandle").finish_non_exhaustive()
    }
}

/// The node this handle fed has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitClosed;

impl std::fmt::Display for SubmitClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node is no longer running")
    }
}

impl std::error::Error for SubmitClosed {}

impl<R> SubmitHandle<R> {
    /// Enqueues one client request for the node's engine mux. Accepts
    /// anything convertible into the node's request type — for
    /// `MultiShotNode` that is the typed `Tx` envelope, so both typed
    /// transactions and legacy `Vec<u8>` payloads submit directly.
    ///
    /// # Errors
    ///
    /// [`SubmitClosed`] if the node has stopped.
    pub fn submit(&self, req: impl Into<R>) -> Result<(), SubmitClosed> {
        (self.send)(req.into())
    }
}

/// The reactor-backed TCP transport: frames staged into per-peer outboxes
/// and handed to the reactor on flush (one channel send per peer plus one
/// poller wakeup), armings into the engine loop's local timer heap,
/// loopback deliveries back into the event channel, outputs to the
/// application channel.
struct TcpTransport<'a, M, R, O> {
    me: NodeId,
    n: usize,
    cmds: &'a mpsc::Sender<(NodeId, Batch)>,
    poller: &'a Poller,
    events: &'a mpsc::Sender<Event<M, R>>,
    timers: &'a mut BinaryHeap<Reverse<Arming>>,
    outputs: &'a mpsc::Sender<(NodeId, O)>,
    /// Scratch encoder reused across sends: payload bytes land here, then
    /// are framed straight into the one outbound allocation per message.
    scratch: &'a mut Writer,
    /// Per-peer staging (indexed by node id), drained by [`flush`]. Lives
    /// outside the per-event transport so its allocations are reused.
    outbox: &'a mut [Batch],
}

impl<M: Wire, R, O> TcpTransport<'_, M, R, O> {
    /// Encodes `msg` into a varint-length-prefixed frame, or `None` if the
    /// payload exceeds the frame limit. Oversize payloads are dropped at
    /// this boundary — a lost message the protocol recovers from via view
    /// change — instead of panicking the node thread as v1 framing did.
    fn frame(&mut self, msg: &M) -> Option<Arc<Vec<u8>>> {
        self.scratch.clear();
        msg.encode(self.scratch);
        let mut framed = Vec::with_capacity(self.scratch.len() + 3);
        match encode_frame_into(self.scratch.as_bytes(), &mut framed) {
            Ok(()) => Some(Arc::new(framed)),
            Err(_) => None,
        }
    }
}

impl<M: Wire, R, O> Transport<M, O> for TcpTransport<'_, M, R, O> {
    fn send(&mut self, dest: Dest, msg: M) {
        match dest {
            Dest::All => {
                if let Some(bytes) = self.frame(&msg) {
                    for i in 0..self.n {
                        if i != self.me.index() {
                            self.outbox[i].push(Arc::clone(&bytes));
                        }
                    }
                }
                // Loopback, like the simulator: instantaneous (and exempt
                // from the frame limit — it never touches a socket).
                let _ = self.events.send(Event::Deliver { from: self.me, msg });
            }
            Dest::Node(to) if to == self.me => {
                let _ = self.events.send(Event::Deliver { from: self.me, msg });
            }
            Dest::Node(to) => {
                if to.index() < self.n {
                    if let Some(bytes) = self.frame(&msg) {
                        self.outbox[to.index()].push(bytes);
                    }
                }
            }
        }
    }

    fn arm_timer(&mut self, id: TimerId, generation: u64, after: u64) {
        let due = Instant::now() + Duration::from_millis(after);
        self.timers.push(Reverse((due, generation, id)));
    }

    fn deliver_output(&mut self, out: O) {
        let _ = self.outputs.send((self.me, out));
    }

    fn flush(&mut self) {
        // One channel handoff per peer per engine batch, then a single
        // reactor wakeup: everything this batch produced for a peer
        // travels (and is later written) together.
        let mut handed_off = false;
        for (i, batch) in self.outbox.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if self.cmds.send((NodeId(i as u16), std::mem::take(batch))).is_ok() {
                handed_off = true;
            } else {
                batch.clear();
            }
        }
        if handed_off {
            let _ = self.poller.notify();
        }
    }
}

/// Runs `node` as `me`, listening on `listener` and dialing the peers of
/// `topology` (indexed by [`NodeId`]); outputs are forwarded to `outputs`.
///
/// Every outbound link is supervised reactor state: it dials with capped
/// jittered backoff, re-handshakes after drops, and resends unretired
/// frames, so peers may boot in any order and flapping connections only
/// delay traffic. One protocol tick is one millisecond of wall-clock time.
///
/// # Errors
///
/// [`NetError`] if the listener or poller cannot be configured.
pub fn run_node<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
) -> Result<NodeHandle, NetError>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
{
    let links = LinkSetup::new(LinkPlan::ideal(), topology.len(), 0);
    let (handle, _event_tx) = run_node_inner::<N, std::convert::Infallible>(
        node,
        me,
        listener,
        topology,
        outputs,
        links,
        None,
        |_, never| match never {},
    )?;
    Ok(handle)
}

/// Like [`run_node`] for nodes accepting client submissions
/// ([`Submitter`]): the returned [`SubmitHandle`] feeds requests into the
/// node's engine mux alongside deliveries and timers.
///
/// # Errors
///
/// As [`run_node`].
pub fn run_submitter<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
) -> Result<(NodeHandle, SubmitHandle<N::Request>), NetError>
where
    N: Submitter + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    N::Request: Send + 'static,
{
    let links = LinkSetup::new(LinkPlan::ideal(), topology.len(), 0);
    run_submitter_inner(node, me, listener, topology, outputs, links, None)
}

pub(crate) fn run_submitter_inner<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
    links: LinkSetup,
    codec: Option<SubmitCodec<N::Request>>,
) -> Result<(NodeHandle, SubmitHandle<N::Request>), NetError>
where
    N: Submitter + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    N::Request: Send + 'static,
{
    let (handle, event_tx) = run_node_inner::<N, N::Request>(
        node,
        me,
        listener,
        topology,
        outputs,
        links,
        codec,
        // Refused submissions (mempool full, degenerate tx) are dropped
        // here; the admission verdict lives on the node's thread.
        |engine, req| {
            let _ = engine.submit(req);
        },
    )?;
    let submit = SubmitHandle {
        send: Box::new(move |req| event_tx.send(Event::Submit(req)).map_err(|_| SubmitClosed)),
    };
    Ok((handle, submit))
}

#[allow(clippy::too_many_arguments)] // internal seam; public entry points are narrow
pub(crate) fn run_node_inner<N, R>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
    links: LinkSetup,
    codec: Option<SubmitCodec<R>>,
    mut on_submit: impl FnMut(&mut Engine<N>, R) + Send + 'static,
) -> Result<Spawned<N::Msg, R>, NetError>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    R: Send + 'static,
{
    let n = topology.len();
    let stop = Arc::new(AtomicBool::new(false));
    let (event_tx, event_rx) = mpsc::channel::<Event<N::Msg, R>>();
    // Captured before the node moves into its thread: announced in every
    // outbound hello and echoed as the handshake ack, so peers can fence
    // frames buffered for a previous incarnation of this node.
    let my_incarnation = node.incarnation();

    let poller = Arc::new(Poller::new().map_err(|source| NetError::Listener { source })?);
    let (cmd_tx, cmd_rx) = mpsc::channel::<(NodeId, Batch)>();

    // Thread 1 of 2: the reactor — listener, inbound connections, and
    // supervised outbound links, all multiplexed on one poller.
    let reactor_cfg = ReactorConfig {
        me,
        my_incarnation,
        listener,
        topology,
        links,
        codec,
        stop: Arc::clone(&stop),
    };
    let reactor_poller = Arc::clone(&poller);
    let reactor_events = event_tx.clone();
    thread::spawn(move || {
        run_reactor::<N::Msg, R>(reactor_cfg, reactor_poller, cmd_rx, reactor_events)
    });

    // Thread 2 of 2: the engine loop, with the timer heap held locally —
    // an arming is a heap push, a firing is a heap pop, no thread hop.
    let loop_stop = Arc::clone(&stop);
    let loop_events = event_tx.clone();
    thread::spawn(move || {
        let start = Instant::now();
        let mut engine = Engine::new(node, me, n);
        let mut scratch = Writer::new();
        let mut outbox: Vec<Batch> = vec![Vec::new(); n];
        let mut timer_heap: BinaryHeap<Reverse<Arming>> = BinaryHeap::new();
        let mut due_timers: Vec<(TimerId, u64)> = Vec::new();
        let now = || Time(start.elapsed().as_millis() as u64);

        // Boot the state machine.
        {
            let mut transport = TcpTransport {
                me,
                n,
                cmds: &cmd_tx,
                poller: &poller,
                events: &loop_events,
                timers: &mut timer_heap,
                outputs: &outputs,
                scratch: &mut scratch,
                outbox: &mut outbox,
            };
            engine.start(now(), &mut transport);
        }

        while !loop_stop.load(Ordering::Relaxed) {
            // Pop everything due; the batch below dispatches it. Armings
            // made *during* the batch land in the heap through the
            // transport and are picked up next iteration.
            let now_wall = Instant::now();
            while timer_heap.peek().is_some_and(|Reverse((due, _, _))| *due <= now_wall) {
                let Reverse((_, generation, id)) = timer_heap.pop().expect("peeked entry exists");
                due_timers.push((id, generation));
            }
            let first = if due_timers.is_empty() {
                let wait = match timer_heap.peek() {
                    Some(Reverse((due, _, _))) => {
                        ENGINE_POLL.min(due.saturating_duration_since(now_wall))
                    }
                    None => ENGINE_POLL,
                };
                match event_rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                    Ok(event) => Some(event),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            } else {
                event_rx.try_recv().ok()
            };
            if due_timers.is_empty() && first.is_none() {
                continue;
            }
            let mut transport = TcpTransport {
                me,
                n,
                cmds: &cmd_tx,
                poller: &poller,
                events: &loop_events,
                timers: &mut timer_heap,
                outputs: &outputs,
                scratch: &mut scratch,
                outbox: &mut outbox,
            };
            // Drain whatever is already queued (due timers, bursts of
            // deliveries) in the same wakeup: one persist/flush seal and
            // one reactor wakeup per *batch* instead of per event.
            let mut dispatched = false;
            let mut drained = 0;
            for (id, generation) in due_timers.drain(..) {
                // Stale (replaced or cancelled) firings die in the
                // engine's generation filter.
                dispatched |= engine.on_timer_buffered(id, generation, now(), &mut transport);
                drained += 1;
            }
            let mut event = first;
            while let Some(ev) = event.take() {
                match ev {
                    Event::Deliver { from, msg } => {
                        engine.on_deliver_buffered(from, msg, now(), &mut transport);
                        dispatched = true;
                    }
                    Event::Submit(req) => on_submit(&mut engine, req),
                }
                drained += 1;
                if drained < MAX_BATCH {
                    event = event_rx.try_recv().ok();
                }
            }
            if dispatched {
                engine.finish_batch(&mut transport);
            }
        }
    });

    Ok((NodeHandle { stop }, event_tx))
}
