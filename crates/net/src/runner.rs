//! Drives one protocol state machine over real sockets and timers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tetrabft_sim::{Action, Context, Dest, Input, Node, Time, TimerId};
use tetrabft_types::NodeId;
use tetrabft_wire::frame::{encode_frame, FrameDecoder};
use tetrabft_wire::Wire;

/// Internal events multiplexed into the node's single-threaded loop.
enum Event<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, generation: u64 },
}

/// An armed timer handed to the node's shared timer thread.
type Arming = (Instant, u64, TimerId);

/// Handle to a running node.
///
/// The node's event loop stops when the handle is aborted or dropped; its
/// I/O threads unwind as their sockets and channels close.
#[derive(Debug)]
pub struct NodeHandle {
    stop: Arc<AtomicBool>,
}

impl NodeHandle {
    /// Stops the node.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.abort();
    }
}

/// Runs `node` as `me`, listening on `listener` and dialing `peers`
/// (indexed by [`NodeId`]); outputs are forwarded to `outputs`.
///
/// One protocol tick is one millisecond of wall-clock time.
///
/// # Errors
///
/// Returns an error if the listener cannot be inspected; dialing retries
/// forever (peers may start in any order).
pub fn run_node<N>(
    mut node: N,
    me: NodeId,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
) -> io::Result<NodeHandle>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
{
    let n = peers.len();
    let stop = Arc::new(AtomicBool::new(false));
    let (event_tx, event_rx) = mpsc::channel::<Event<N::Msg>>();

    // Accept loop: each inbound connection announces its sender id in a
    // 2-byte hello, then streams frames. The connection *is* the
    // authenticated channel. Non-blocking accept so the thread (and the
    // bound socket) actually go away when the node is stopped.
    listener.set_nonblocking(true)?;
    let accept_tx = event_tx.clone();
    let accept_stop = Arc::clone(&stop);
    thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let tx = accept_tx.clone();
                thread::spawn(move || {
                    let _ = read_peer(stream, tx);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if accept_stop.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    });

    // One timer thread per node: armings arrive over a channel, fire from a
    // deadline heap. Exits as soon as the event loop drops its sender.
    let (timer_tx, timer_rx) = mpsc::channel::<Arming>();
    let timer_events = event_tx.clone();
    thread::spawn(move || run_timers(timer_rx, timer_events));

    // Writer threads: one per peer, fed frames through a channel; dialing
    // retries until the peer is up.
    let mut writers: HashMap<NodeId, mpsc::Sender<Arc<Vec<u8>>>> = HashMap::new();
    for (i, addr) in peers.iter().enumerate() {
        let peer = NodeId(i as u16);
        if peer == me {
            continue;
        }
        let (tx, rx) = mpsc::channel::<Arc<Vec<u8>>>();
        writers.insert(peer, tx);
        let addr = *addr;
        thread::spawn(move || write_peer(me, addr, rx));
    }

    let loop_stop = Arc::clone(&stop);
    thread::spawn(move || {
        let start = Instant::now();
        let mut generations: HashMap<TimerId, u64> = HashMap::new();

        // Boot the state machine.
        let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
        {
            let now = Time(start.elapsed().as_millis() as u64);
            let mut ctx = Context::buffered(me, n, now, &mut actions);
            node.handle(Input::Start, &mut ctx);
        }
        apply_actions::<N>(actions, me, &writers, &event_tx, &timer_tx, &outputs, &mut generations);

        while !loop_stop.load(Ordering::Relaxed) {
            let event = match event_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            let input = match event {
                Event::Deliver { from, msg } => Input::Deliver { from, msg },
                Event::Timer { id, generation } => {
                    if generations.get(&id) != Some(&generation) {
                        continue; // stale (replaced or cancelled) timer
                    }
                    Input::Timer { id }
                }
            };
            let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
            {
                let now = Time(start.elapsed().as_millis() as u64);
                let mut ctx = Context::buffered(me, n, now, &mut actions);
                node.handle(input, &mut ctx);
            }
            apply_actions::<N>(
                actions,
                me,
                &writers,
                &event_tx,
                &timer_tx,
                &outputs,
                &mut generations,
            );
        }
    });

    Ok(NodeHandle { stop })
}

fn apply_actions<N>(
    actions: Vec<Action<N::Msg, N::Output>>,
    me: NodeId,
    writers: &HashMap<NodeId, mpsc::Sender<Arc<Vec<u8>>>>,
    events: &mpsc::Sender<Event<N::Msg>>,
    timers: &mpsc::Sender<Arming>,
    outputs: &mpsc::Sender<(NodeId, N::Output)>,
    generations: &mut HashMap<TimerId, u64>,
) where
    N: Node,
    N::Msg: Wire + Send + 'static,
{
    for action in actions {
        match action {
            Action::Send { dest, msg } => {
                let bytes = Arc::new(encode_frame(&msg.to_bytes()));
                match dest {
                    Dest::All => {
                        for tx in writers.values() {
                            let _ = tx.send(Arc::clone(&bytes));
                        }
                        // Loopback, like the simulator: instantaneous.
                        let _ = events.send(Event::Deliver { from: me, msg });
                    }
                    Dest::Node(to) if to == me => {
                        let _ = events.send(Event::Deliver { from: me, msg });
                    }
                    Dest::Node(to) => {
                        if let Some(tx) = writers.get(&to) {
                            let _ = tx.send(bytes);
                        }
                    }
                }
            }
            Action::SetTimer { id, after } => {
                let generation = generations.entry(id).or_insert(0);
                *generation += 1;
                let due = Instant::now() + Duration::from_millis(after);
                let _ = timers.send((due, *generation, id));
            }
            Action::CancelTimer { id } => {
                *generations.entry(id).or_insert(0) += 1;
            }
            Action::Output(output) => {
                let _ = outputs.send((me, output));
            }
        }
    }
}

/// The per-node timer thread: keeps armings in a deadline heap and turns
/// them into [`Event::Timer`]s when due. Stale generations are filtered by
/// the event loop, so superseded armings may fire here harmlessly.
fn run_timers<M>(rx: mpsc::Receiver<Arming>, events: mpsc::Sender<Event<M>>) {
    let mut heap: BinaryHeap<Reverse<Arming>> = BinaryHeap::new();
    loop {
        let wait = match heap.peek() {
            Some(Reverse((due, _, _))) => due.saturating_duration_since(Instant::now()),
            None => Duration::from_secs(3600),
        };
        match rx.recv_timeout(wait) {
            Ok(arming) => heap.push(Reverse(arming)),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse((due, _, _))| *due <= now) {
            let Reverse((_, generation, id)) = heap.pop().expect("peeked entry exists");
            if events.send(Event::Timer { id, generation }).is_err() {
                return;
            }
        }
    }
}

fn read_peer<M: Wire>(mut stream: TcpStream, events: mpsc::Sender<Event<M>>) -> io::Result<()> {
    let mut hello = [0u8; 2];
    stream.read_exact(&mut hello)?;
    let from = NodeId(u16::from_be_bytes(hello));
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let read = stream.read(&mut buf)?;
        if read == 0 {
            return Ok(());
        }
        decoder.extend(&buf[..read]);
        while let Some(frame) =
            decoder.next_frame().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            match M::from_bytes(&frame) {
                Ok(msg) => {
                    if events.send(Event::Deliver { from, msg }).is_err() {
                        return Ok(()); // node shut down
                    }
                }
                Err(_) => {
                    // Malformed traffic is an adversarial act; ignore the
                    // frame but keep the (authenticated) channel alive.
                }
            }
        }
    }
}

fn write_peer(me: NodeId, addr: SocketAddr, rx: mpsc::Receiver<Arc<Vec<u8>>>) {
    // Dial with retry: peers boot in arbitrary order.
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    };
    let _ = stream.set_nodelay(true);
    if stream.write_all(&me.0.to_be_bytes()).is_err() {
        return;
    }
    while let Ok(bytes) = rx.recv() {
        if stream.write_all(&bytes).is_err() {
            return;
        }
    }
}
