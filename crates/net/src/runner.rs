//! Drives one protocol state machine over real sockets and timers.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

use tetrabft_sim::{Action, Context, Dest, Input, Node, Time, TimerId};
use tetrabft_types::NodeId;
use tetrabft_wire::frame::{encode_frame, FrameDecoder};
use tetrabft_wire::Wire;

/// Internal events multiplexed into the node's single-threaded loop.
enum Event<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, generation: u64 },
}

/// Handle to a running node task.
#[derive(Debug)]
pub struct NodeHandle {
    task: JoinHandle<()>,
}

impl NodeHandle {
    /// Stops the node.
    pub fn abort(&self) {
        self.task.abort();
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Runs `node` as `me`, listening on `listener` and dialing `peers`
/// (indexed by [`NodeId`]); outputs are forwarded to `outputs`.
///
/// One protocol tick is one millisecond of wall-clock time.
///
/// # Errors
///
/// Returns an error if the listener cannot accept; dialing retries forever
/// (peers may start in any order).
pub async fn run_node<N>(
    mut node: N,
    me: NodeId,
    listener: TcpListener,
    peers: Vec<SocketAddr>,
    outputs: mpsc::UnboundedSender<(NodeId, N::Output)>,
) -> io::Result<NodeHandle>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
{
    let n = peers.len();
    let (event_tx, mut event_rx) = mpsc::unbounded_channel::<Event<N::Msg>>();

    // Accept loop: each inbound connection announces its sender id in a
    // 2-byte hello, then streams frames. The connection *is* the
    // authenticated channel.
    let accept_tx = event_tx.clone();
    tokio::spawn(async move {
        loop {
            let Ok((stream, _)) = listener.accept().await else { return };
            let tx = accept_tx.clone();
            tokio::spawn(async move {
                let _ = read_peer(stream, tx).await;
            });
        }
    });

    // Writer tasks: one per peer, fed bytes through a channel; dialing
    // retries until the peer is up.
    let mut writers: HashMap<NodeId, mpsc::UnboundedSender<Arc<Vec<u8>>>> = HashMap::new();
    for (i, addr) in peers.iter().enumerate() {
        let peer = NodeId(i as u16);
        if peer == me {
            continue;
        }
        let (tx, rx) = mpsc::unbounded_channel::<Arc<Vec<u8>>>();
        writers.insert(peer, tx);
        tokio::spawn(write_peer(me, *addr, rx));
    }

    let task = tokio::spawn(async move {
        let start = tokio::time::Instant::now();
        let mut generations: HashMap<TimerId, u64> = HashMap::new();

        // Boot the state machine.
        let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
        {
            let now = Time(start.elapsed().as_millis() as u64);
            let mut ctx = Context::buffered(me, n, now, &mut actions);
            node.handle(Input::Start, &mut ctx);
        }
        apply_actions::<N>(actions, me, &writers, &event_tx, &outputs, &mut generations);

        while let Some(event) = event_rx.recv().await {
            let input = match event {
                Event::Deliver { from, msg } => Input::Deliver { from, msg },
                Event::Timer { id, generation } => {
                    if generations.get(&id) != Some(&generation) {
                        continue; // stale (replaced or cancelled) timer
                    }
                    Input::Timer { id }
                }
            };
            let mut actions: Vec<Action<N::Msg, N::Output>> = Vec::new();
            {
                let now = Time(start.elapsed().as_millis() as u64);
                let mut ctx = Context::buffered(me, n, now, &mut actions);
                node.handle(input, &mut ctx);
            }
            apply_actions::<N>(actions, me, &writers, &event_tx, &outputs, &mut generations);
        }
    });

    Ok(NodeHandle { task })
}

fn apply_actions<N>(
    actions: Vec<Action<N::Msg, N::Output>>,
    me: NodeId,
    writers: &HashMap<NodeId, mpsc::UnboundedSender<Arc<Vec<u8>>>>,
    events: &mpsc::UnboundedSender<Event<N::Msg>>,
    outputs: &mpsc::UnboundedSender<(NodeId, N::Output)>,
    generations: &mut HashMap<TimerId, u64>,
) where
    N: Node,
    N::Msg: Wire + Send + 'static,
{
    for action in actions {
        match action {
            Action::Send { dest, msg } => {
                let bytes = Arc::new(encode_frame(&msg.to_bytes()));
                match dest {
                    Dest::All => {
                        for tx in writers.values() {
                            let _ = tx.send(bytes.clone());
                        }
                        // Loopback, like the simulator: instantaneous.
                        let _ = events.send(Event::Deliver { from: me, msg });
                    }
                    Dest::Node(to) if to == me => {
                        let _ = events.send(Event::Deliver { from: me, msg });
                    }
                    Dest::Node(to) => {
                        if let Some(tx) = writers.get(&to) {
                            let _ = tx.send(bytes);
                        }
                    }
                }
            }
            Action::SetTimer { id, after } => {
                let generation = generations.entry(id).or_insert(0);
                *generation += 1;
                let generation = *generation;
                let events = events.clone();
                tokio::spawn(async move {
                    tokio::time::sleep(Duration::from_millis(after)).await;
                    let _ = events.send(Event::Timer { id, generation });
                });
            }
            Action::CancelTimer { id } => {
                *generations.entry(id).or_insert(0) += 1;
            }
            Action::Output(output) => {
                let _ = outputs.send((me, output));
            }
        }
    }
}

async fn read_peer<M: Wire>(
    mut stream: TcpStream,
    events: mpsc::UnboundedSender<Event<M>>,
) -> io::Result<()> {
    let from = NodeId(stream.read_u16().await?);
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let read = stream.read(&mut buf).await?;
        if read == 0 {
            return Ok(());
        }
        decoder.extend(&buf[..read]);
        while let Some(frame) = decoder
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            match M::from_bytes(&frame) {
                Ok(msg) => {
                    if events.send(Event::Deliver { from, msg }).is_err() {
                        return Ok(()); // node shut down
                    }
                }
                Err(_) => {
                    // Malformed traffic is an adversarial act; ignore the
                    // frame but keep the (authenticated) channel alive.
                }
            }
        }
    }
}

async fn write_peer(
    me: NodeId,
    addr: SocketAddr,
    mut rx: mpsc::UnboundedReceiver<Arc<Vec<u8>>>,
) {
    // Dial with retry: peers boot in arbitrary order.
    let mut stream = loop {
        match TcpStream::connect(addr).await {
            Ok(s) => break s,
            Err(_) => tokio::time::sleep(Duration::from_millis(20)).await,
        }
    };
    if stream.write_u16(me.0).await.is_err() {
        return;
    }
    while let Some(bytes) = rx.recv().await {
        if stream.write_all(&bytes).await.is_err() {
            return;
        }
    }
}
