//! Drives one protocol state machine over real sockets and timers — a
//! threaded TCP [`Transport`] underneath the shared
//! [`tetrabft_engine::Engine`] loop.
//!
//! The runtime owns only I/O: the accept loop, per-peer reader threads and
//! link supervisors (`supervisor.rs` — reconnect with capped backoff,
//! re-handshake, buffered resume, link conditioning), a wall-clock timer
//! heap, and the channels that funnel everything into one event stream per
//! node. Timer generations, action dispatch, and the input mux (deliver /
//! timer / client-submit) live in the engine, exactly as in the simulator.
//!
//! Outbound messages are staged per event batch: each wakeup of the event
//! loop drains every already-queued event (bounded by `MAX_BATCH`) through
//! the engine's `*_buffered` entry points, the transport frames each
//! message once and parks it in a per-peer outbox, and one
//! [`Transport::flush`] at the end of the batch hands each peer's staged
//! frames to its link supervisor in a single channel operation; the
//! supervisor writes the whole batch through one buffered flush.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tetrabft_engine::{Dest, Engine, Node, Submitter, Time, TimerId, Transport};
use tetrabft_sim::LinkPlan;
use tetrabft_types::NodeId;
use tetrabft_wire::frame::{encode_frame_into, FrameDecoder};
use tetrabft_wire::{Wire, Writer};

use crate::link::LinkSetup;
use crate::supervisor::{run_link, LinkConfig};
use crate::topology::{NetError, Topology};

/// Internal events multiplexed into the node's single-threaded loop.
pub(crate) enum Event<M, R> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, generation: u64 },
    Submit(R),
}

/// An armed timer handed to the node's shared timer thread.
type Arming = (Instant, u64, TimerId);

/// A spawned node: its stop handle plus the event channel feeding its
/// engine mux (kept internal; submitters wrap it in a [`SubmitHandle`]).
type Spawned<M, R> = (NodeHandle, mpsc::Sender<Event<M, R>>);

/// Frames staged for one peer's link supervisor.
type Batch = Vec<Arc<Vec<u8>>>;

/// Handle to a running node.
///
/// The node's event loop stops when the handle is aborted or dropped; its
/// I/O threads unwind as their sockets and channels close.
#[derive(Debug)]
pub struct NodeHandle {
    stop: Arc<AtomicBool>,
}

impl NodeHandle {
    /// Stops the node.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.abort();
    }
}

/// A client's way into a running node's engine mux: submissions travel the
/// same event channel as deliveries and timer firings.
///
/// Admission happens on the node's own thread; a transaction the mempool
/// refuses (full, oversized, duplicate) is dropped there — at the TCP
/// boundary backpressure is best-effort, while in-process embedders get
/// the typed error from the node's own submit API.
pub struct SubmitHandle<R> {
    send: Box<dyn Fn(R) -> Result<(), SubmitClosed> + Send>,
}

impl<R> std::fmt::Debug for SubmitHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitHandle").finish_non_exhaustive()
    }
}

/// The node this handle fed has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitClosed;

impl std::fmt::Display for SubmitClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node is no longer running")
    }
}

impl std::error::Error for SubmitClosed {}

impl<R> SubmitHandle<R> {
    /// Enqueues one client request for the node's engine mux. Accepts
    /// anything convertible into the node's request type — for
    /// `MultiShotNode` that is the typed `Tx` envelope, so both typed
    /// transactions and legacy `Vec<u8>` payloads submit directly.
    ///
    /// # Errors
    ///
    /// [`SubmitClosed`] if the node has stopped.
    pub fn submit(&self, req: impl Into<R>) -> Result<(), SubmitClosed> {
        (self.send)(req.into())
    }
}

/// The threaded TCP transport: frames staged into per-peer outboxes and
/// handed to link supervisors on flush, armings to the timer thread,
/// loopback deliveries back into the event channel, outputs to the
/// application channel.
struct TcpTransport<'a, M, R, O> {
    me: NodeId,
    writers: &'a HashMap<NodeId, mpsc::Sender<Batch>>,
    events: &'a mpsc::Sender<Event<M, R>>,
    timers: &'a mpsc::Sender<Arming>,
    outputs: &'a mpsc::Sender<(NodeId, O)>,
    /// Scratch encoder reused across sends: payload bytes land here, then
    /// are framed straight into the one outbound allocation per message.
    scratch: &'a mut Writer,
    /// Per-peer staging (indexed by node id), drained by [`flush`]. Lives
    /// outside the per-event transport so its allocations are reused.
    outbox: &'a mut [Batch],
}

impl<M: Wire, R, O> TcpTransport<'_, M, R, O> {
    /// Encodes `msg` into a varint-length-prefixed frame, or `None` if the
    /// payload exceeds the frame limit. Oversize payloads are dropped at
    /// this boundary — a lost message the protocol recovers from via view
    /// change — instead of panicking the node thread as v1 framing did.
    fn frame(&mut self, msg: &M) -> Option<Arc<Vec<u8>>> {
        self.scratch.clear();
        msg.encode(self.scratch);
        let mut framed = Vec::with_capacity(self.scratch.len() + 3);
        match encode_frame_into(self.scratch.as_bytes(), &mut framed) {
            Ok(()) => Some(Arc::new(framed)),
            Err(_) => None,
        }
    }
}

impl<M: Wire, R, O> Transport<M, O> for TcpTransport<'_, M, R, O> {
    fn send(&mut self, dest: Dest, msg: M) {
        match dest {
            Dest::All => {
                if let Some(bytes) = self.frame(&msg) {
                    for peer in self.writers.keys() {
                        self.outbox[peer.index()].push(Arc::clone(&bytes));
                    }
                }
                // Loopback, like the simulator: instantaneous (and exempt
                // from the frame limit — it never touches a socket).
                let _ = self.events.send(Event::Deliver { from: self.me, msg });
            }
            Dest::Node(to) if to == self.me => {
                let _ = self.events.send(Event::Deliver { from: self.me, msg });
            }
            Dest::Node(to) => {
                if let Some(bytes) = self.frame(&msg) {
                    if self.writers.contains_key(&to) {
                        self.outbox[to.index()].push(bytes);
                    }
                }
            }
        }
    }

    fn arm_timer(&mut self, id: TimerId, generation: u64, after: u64) {
        let due = Instant::now() + Duration::from_millis(after);
        let _ = self.timers.send((due, generation, id));
    }

    fn deliver_output(&mut self, out: O) {
        let _ = self.outputs.send((self.me, out));
    }

    fn flush(&mut self) {
        // One channel handoff per peer per engine input: everything this
        // input produced for a peer travels (and is later written) as one
        // batch.
        for (i, batch) in self.outbox.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match self.writers.get(&NodeId(i as u16)) {
                Some(tx) => {
                    let _ = tx.send(std::mem::take(batch));
                }
                None => batch.clear(),
            }
        }
    }
}

/// Runs `node` as `me`, listening on `listener` and dialing the peers of
/// `topology` (indexed by [`NodeId`]); outputs are forwarded to `outputs`.
///
/// Every outbound link is supervised: it dials with capped exponential
/// backoff, re-handshakes after drops, and resends unconfirmed frames, so
/// peers may boot in any order and flapping connections only delay
/// traffic. One protocol tick is one millisecond of wall-clock time.
///
/// # Errors
///
/// [`NetError`] if the listener cannot be configured.
pub fn run_node<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
) -> Result<NodeHandle, NetError>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
{
    let links = LinkSetup::new(LinkPlan::ideal(), topology.len(), 0);
    let (handle, _event_tx) = run_node_inner::<N, std::convert::Infallible>(
        node,
        me,
        listener,
        topology,
        outputs,
        links,
        |_, never| match never {},
    )?;
    Ok(handle)
}

/// Like [`run_node`] for nodes accepting client submissions
/// ([`Submitter`]): the returned [`SubmitHandle`] feeds requests into the
/// node's engine mux alongside deliveries and timers.
///
/// # Errors
///
/// As [`run_node`].
pub fn run_submitter<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
) -> Result<(NodeHandle, SubmitHandle<N::Request>), NetError>
where
    N: Submitter + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    N::Request: Send + 'static,
{
    let links = LinkSetup::new(LinkPlan::ideal(), topology.len(), 0);
    run_submitter_inner(node, me, listener, topology, outputs, links)
}

pub(crate) fn run_submitter_inner<N>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
    links: LinkSetup,
) -> Result<(NodeHandle, SubmitHandle<N::Request>), NetError>
where
    N: Submitter + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    N::Request: Send + 'static,
{
    let (handle, event_tx) = run_node_inner::<N, N::Request>(
        node,
        me,
        listener,
        topology,
        outputs,
        links,
        // Refused submissions (mempool full, degenerate tx) are dropped
        // here; the admission verdict lives on the node's thread.
        |engine, req| {
            let _ = engine.submit(req);
        },
    )?;
    let submit = SubmitHandle {
        send: Box::new(move |req| event_tx.send(Event::Submit(req)).map_err(|_| SubmitClosed)),
    };
    Ok((handle, submit))
}

pub(crate) fn run_node_inner<N, R>(
    node: N,
    me: NodeId,
    listener: TcpListener,
    topology: Topology,
    outputs: mpsc::Sender<(NodeId, N::Output)>,
    links: LinkSetup,
    mut on_submit: impl FnMut(&mut Engine<N>, R) + Send + 'static,
) -> Result<Spawned<N::Msg, R>, NetError>
where
    N: Node + Send + 'static,
    N::Msg: Wire + Send + 'static,
    N::Output: Send + 'static,
    R: Send + 'static,
{
    let n = topology.len();
    let stop = Arc::new(AtomicBool::new(false));
    let (event_tx, event_rx) = mpsc::channel::<Event<N::Msg, R>>();
    // Captured before the node moves into its thread: announced in every
    // outbound hello and echoed as the handshake ack, so peers can fence
    // frames buffered for a previous incarnation of this node.
    let my_incarnation = node.incarnation();

    // Accept loop: each inbound connection announces its sender id and
    // incarnation in a 10-byte hello and receives this node's incarnation
    // as an 8-byte ack, then streams frames. The connection *is* the
    // authenticated channel. Non-blocking accept so the thread (and the
    // bound socket) actually go away when the node is stopped. A peer may
    // reconnect any number of times; each connection gets a fresh reader
    // (and a fresh frame decoder, so a partial frame cut off by a broken
    // connection can never corrupt the resent copy).
    listener.set_nonblocking(true).map_err(|source| NetError::Listener { source })?;
    let accept_tx = event_tx.clone();
    let accept_stop = Arc::clone(&stop);
    thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let tx = accept_tx.clone();
                thread::spawn(move || {
                    let _ = read_peer(stream, me, my_incarnation, n, tx);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if accept_stop.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    });

    // One timer thread per node: armings arrive over a channel, fire from a
    // deadline heap. Exits as soon as the event loop drops its sender.
    let (timer_tx, timer_rx) = mpsc::channel::<Arming>();
    let timer_events = event_tx.clone();
    thread::spawn(move || run_timers(timer_rx, timer_events));

    // Link supervisors: one per outbound edge, fed frame batches through a
    // channel; each owns dialing, backoff, re-handshake, conditioning, and
    // the buffered-resume queue.
    let mut writers: HashMap<NodeId, mpsc::Sender<Batch>> = HashMap::new();
    for (i, addr) in topology.addrs().iter().enumerate() {
        let peer = NodeId(i as u16);
        if peer == me {
            continue;
        }
        let (tx, rx) = mpsc::channel::<Batch>();
        writers.insert(peer, tx);
        let cfg = LinkConfig {
            me,
            my_incarnation,
            addr: *addr,
            conditioner: links.conditioner(me, peer),
            cut: links.cut_flag(me, peer),
            metrics: Arc::clone(&links.metrics),
        };
        thread::spawn(move || run_link(cfg, rx));
    }

    let loop_stop = Arc::clone(&stop);
    let loop_events = event_tx.clone();
    thread::spawn(move || {
        let start = Instant::now();
        let mut engine = Engine::new(node, me, n);
        let mut scratch = Writer::new();
        let mut outbox: Vec<Batch> = vec![Vec::new(); n];
        let now = || Time(start.elapsed().as_millis() as u64);

        // Boot the state machine.
        {
            let mut transport = TcpTransport {
                me,
                writers: &writers,
                events: &loop_events,
                timers: &timer_tx,
                outputs: &outputs,
                scratch: &mut scratch,
                outbox: &mut outbox,
            };
            engine.start(now(), &mut transport);
        }

        // How many queued events one wakeup may drain before it must seal:
        // bounds both worst-case flush latency and how long persisted state
        // can trail the newest processed input.
        const MAX_BATCH: usize = 64;

        while !loop_stop.load(Ordering::Relaxed) {
            let first = match event_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            let mut transport = TcpTransport {
                me,
                writers: &writers,
                events: &loop_events,
                timers: &timer_tx,
                outputs: &outputs,
                scratch: &mut scratch,
                outbox: &mut outbox,
            };
            // Drain whatever else is already queued (bursts of deliveries,
            // due timers) in the same wakeup: one persist/flush seal and
            // one channel round-trip per *batch* instead of per event.
            let mut dispatched = false;
            let mut event = Some(first);
            let mut drained = 0;
            while let Some(ev) = event.take() {
                match ev {
                    Event::Deliver { from, msg } => {
                        engine.on_deliver_buffered(from, msg, now(), &mut transport);
                        dispatched = true;
                    }
                    Event::Timer { id, generation } => {
                        // Stale (replaced or cancelled) firings die in the
                        // engine's generation filter.
                        dispatched |=
                            engine.on_timer_buffered(id, generation, now(), &mut transport);
                    }
                    Event::Submit(req) => on_submit(&mut engine, req),
                }
                drained += 1;
                if drained < MAX_BATCH {
                    event = event_rx.try_recv().ok();
                }
            }
            if dispatched {
                engine.finish_batch(&mut transport);
            }
        }
    });

    Ok((NodeHandle { stop }, event_tx))
}

/// The per-node timer thread: keeps armings in a deadline heap and turns
/// them into [`Event::Timer`]s when due. Stale generations are filtered by
/// the engine, so superseded armings may fire here harmlessly.
fn run_timers<M, R>(rx: mpsc::Receiver<Arming>, events: mpsc::Sender<Event<M, R>>) {
    let mut heap: BinaryHeap<Reverse<Arming>> = BinaryHeap::new();
    loop {
        let wait = match heap.peek() {
            Some(Reverse((due, _, _))) => due.saturating_duration_since(Instant::now()),
            None => Duration::from_secs(3600),
        };
        match rx.recv_timeout(wait) {
            Ok(arming) => heap.push(Reverse(arming)),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse((due, _, _))| *due <= now) {
            let Reverse((_, generation, id)) = heap.pop().expect("peeked entry exists");
            if events.send(Event::Timer { id, generation }).is_err() {
                return;
            }
        }
    }
}

fn read_peer<M: Wire, R>(
    mut stream: TcpStream,
    me: NodeId,
    my_incarnation: u64,
    n: usize,
    events: mpsc::Sender<Event<M, R>>,
) -> io::Result<()> {
    let mut hello = [0u8; 10];
    stream.read_exact(&mut hello)?;
    let from = NodeId(u16::from_be_bytes([hello[0], hello[1]]));
    // (The dialer's incarnation, hello[2..10], is carried for symmetry and
    // future inbound fencing; attribution alone doesn't need it.)
    // The hello is a claim, and on a real (non-localhost) topology anything
    // can reach the listen port: a claimed id outside the cluster — or our
    // own, which only the in-process loopback path may use — would index
    // per-peer protocol state out of bounds downstream. Hang up instead.
    if from.index() >= n || from == me {
        return Ok(());
    }
    // Ack with our incarnation: the dialer's supervisor compares it against
    // the one it last saw and discards frames buffered for a previous life
    // of this node.
    stream.write_all(&my_incarnation.to_be_bytes())?;
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let read = stream.read(&mut buf)?;
        if read == 0 {
            return Ok(());
        }
        decoder.extend(&buf[..read]);
        // Frames are decoded zero-copy out of the decoder's buffer.
        while let Some(frame) =
            decoder.next_frame().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            match M::from_bytes(frame) {
                Ok(msg) => {
                    if events.send(Event::Deliver { from, msg }).is_err() {
                        return Ok(()); // node shut down
                    }
                }
                Err(_) => {
                    // Malformed traffic is an adversarial act; ignore the
                    // frame but keep the (authenticated) channel alive.
                }
            }
        }
    }
}
