//! Localhost cluster orchestration.

use std::io;
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use tetrabft_sim::Node;
use tetrabft_types::NodeId;
use tetrabft_wire::Wire;

use crate::runner::{run_node, NodeHandle};

/// A running localhost cluster: `n` nodes in one process, real TCP between
/// them.
///
/// Dropping the cluster stops every node.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Cluster<O> {
    outputs: mpsc::Receiver<(NodeId, O)>,
    handles: Vec<NodeHandle>,
}

impl<O> Cluster<O> {
    /// Binds `n` ephemeral listeners on 127.0.0.1 and spawns one node per
    /// listener, built by `make`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn spawn<N, F>(n: usize, mut make: F) -> io::Result<Cluster<O>>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = NodeId(i as u16);
            let handle = run_node(make(id), id, listener, addrs.clone(), tx.clone())?;
            handles.push(handle);
        }
        Ok(Cluster { outputs: rx, handles })
    }

    /// Waits for the next protocol output from any node.
    pub fn next_output(&mut self) -> Option<(NodeId, O)> {
        self.outputs.recv().ok()
    }

    /// Waits for the next protocol output, giving up after `timeout`.
    pub fn next_output_timeout(&mut self, timeout: Duration) -> Option<(NodeId, O)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}
