//! Cluster orchestration: flat clusters, submitting clusters, the sharded
//! multi-instance mode, and the [`ClusterBuilder`] that threads a
//! declarative topology and link plan through every node.

use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use tetrabft_engine::{FrameRequest, Node, Submitter};
use tetrabft_sim::LinkPlan;
use tetrabft_types::NodeId;
use tetrabft_wire::Wire;

use crate::link::{LinkSetup, NetControl};
use crate::reactor::SubmitCodec;
use crate::runner::{run_node_inner, run_submitter_inner, NodeHandle, SubmitHandle};
use crate::topology::{NetError, Topology};

/// A running cluster: `n` nodes in one process, real TCP between them.
///
/// Dropping the cluster stops every node.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Cluster<O> {
    outputs: mpsc::Receiver<(NodeId, O)>,
    handles: Vec<NodeHandle>,
    /// Retained for node restarts: the shared output sender, the addresses
    /// every node listens on, and the link setup (conditioners, metrics,
    /// cut flags) a replacement node re-joins.
    tx: mpsc::Sender<(NodeId, O)>,
    topology: Topology,
    setup: LinkSetup,
}

/// How long a restart will wait out `AddrInUse` while the killed node's
/// accept loop releases the listen port (one ≤20 ms poll, plus OS lag).
const REBIND_WINDOW: Duration = Duration::from_secs(5);

/// What [`Cluster::spawn_submitting`] yields: the cluster plus one
/// [`SubmitHandle`] per node (indexed by [`NodeId`]).
pub type SubmittingCluster<O, R> = (Cluster<O>, Vec<SubmitHandle<R>>);

/// Declarative cluster spec: node count or explicit [`Topology`], a
/// [`LinkPlan`] for fault injection / WAN conditioning, and the
/// deterministic seed feeding every edge's conditioner.
///
/// # Examples
///
/// Spawn a 4-node cluster whose links behave like a 30 ms WAN, then sever
/// and heal a link mid-run:
///
/// ```no_run
/// use tetrabft::{Params, TetraNode};
/// use tetrabft_net::{ClusterBuilder, LinkPlan};
/// use tetrabft_types::{Config, NodeId, Value};
///
/// # fn main() -> Result<(), tetrabft_net::NetError> {
/// let cfg = Config::new(4).unwrap();
/// let (mut cluster, net) = ClusterBuilder::new(4).plan(LinkPlan::wan(30)).spawn(|id| {
///     TetraNode::new(cfg, Params::new(1000), id, Value::from_u64(7))
/// })?;
/// net.cut(NodeId(0), NodeId(1)); // the link re-establishes on its own
/// let (node, decided) = cluster.next_output().unwrap();
/// println!("{node} decided {decided}; {:?}", net.stats());
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    n: usize,
    topology: Option<Topology>,
    plan: LinkPlan,
    seed: u64,
}

impl ClusterBuilder {
    /// Starts a spec for `n` nodes on OS-assigned localhost ports.
    pub fn new(n: usize) -> Self {
        ClusterBuilder { n, topology: None, plan: LinkPlan::ideal(), seed: 0 }
    }

    /// Places nodes at explicit addresses instead of ephemeral localhost
    /// ports (the node count becomes the topology's length).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.n = topology.len();
        self.topology = Some(topology);
        self
    }

    /// Conditions every link according to `plan` (delays, jitter, loss,
    /// scripted partitions). Default: ideal links.
    pub fn plan(mut self, plan: LinkPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Seeds the per-edge conditioning RNGs (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn listeners(&mut self) -> Result<(Vec<TcpListener>, Topology, LinkSetup), NetError> {
        let (listeners, topology) = match self.topology.take() {
            Some(t) => (t.bind_all()?, t),
            None => Topology::bind_ephemeral(self.n)?,
        };
        let setup = LinkSetup::new(self.plan.clone(), topology.len(), self.seed);
        Ok((listeners, topology, setup))
    }

    /// Spawns one node per topology slot, built by `make`, and returns the
    /// cluster plus its [`NetControl`] (link stats and fault injection).
    ///
    /// # Errors
    ///
    /// [`NetError`] on bind or listener-configuration failures.
    pub fn spawn<N, O, F>(mut self, mut make: F) -> Result<(Cluster<O>, NetControl), NetError>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        let (listeners, topology, setup) = self.listeners()?;
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(topology.len());
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = NodeId(i as u16);
            let (handle, _events) = run_node_inner::<N, std::convert::Infallible>(
                make(id),
                id,
                listener,
                topology.clone(),
                tx.clone(),
                setup.clone(),
                None,
                |_, never| match never {},
            )?;
            handles.push(handle);
        }
        let control = setup.control();
        Ok((Cluster { outputs: rx, handles, tx, topology, setup }, control))
    }

    /// Like [`ClusterBuilder::spawn`] for [`Submitter`] nodes: also
    /// returns one [`SubmitHandle`] per node.
    ///
    /// # Errors
    ///
    /// As [`ClusterBuilder::spawn`].
    pub fn spawn_submitting<N, O, F>(
        self,
        make: F,
    ) -> Result<(SubmittingCluster<O, N::Request>, NetControl), NetError>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        self.spawn_submitting_with(make, None)
    }

    /// Like [`ClusterBuilder::spawn_submitting`] for nodes **serving
    /// framed client submissions over TCP**: every node also accepts
    /// client connections on its listen port (hello id `0xFFFF`), decodes
    /// each frame through [`FrameRequest`], and feeds it into the engine
    /// mux — the 10k-client path of `tetrabft-load`, with no thread per
    /// connection. The in-process [`SubmitHandle`]s are returned too.
    ///
    /// # Errors
    ///
    /// As [`ClusterBuilder::spawn`].
    pub fn spawn_serving<N, O, F>(
        self,
        make: F,
    ) -> Result<(SubmittingCluster<O, N::Request>, NetControl), NetError>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: FrameRequest + Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        self.spawn_submitting_with(make, Some(N::Request::from_frame))
    }

    fn spawn_submitting_with<N, O, F>(
        mut self,
        mut make: F,
        codec: Option<SubmitCodec<N::Request>>,
    ) -> Result<(SubmittingCluster<O, N::Request>, NetControl), NetError>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        let (listeners, topology, setup) = self.listeners()?;
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(topology.len());
        let mut submitters = Vec::with_capacity(topology.len());
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = NodeId(i as u16);
            let (handle, submit) = run_submitter_inner(
                make(id),
                id,
                listener,
                topology.clone(),
                tx.clone(),
                setup.clone(),
                codec,
            )?;
            handles.push(handle);
            submitters.push(submit);
        }
        let control = setup.control();
        Ok(((Cluster { outputs: rx, handles, tx, topology, setup }, submitters), control))
    }
}

impl<O> Cluster<O> {
    /// Binds `n` OS-assigned ephemeral listeners on localhost and spawns
    /// one node per listener, built by `make`, over unconditioned links.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors as [`NetError`].
    pub fn spawn<N, F>(n: usize, make: F) -> Result<Cluster<O>, NetError>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        ClusterBuilder::new(n).spawn(make).map(|(cluster, _)| cluster)
    }

    /// Like [`Cluster::spawn`] for nodes accepting client submissions:
    /// also returns one [`SubmitHandle`] per node, feeding requests into
    /// that node's engine mux at runtime.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors as [`NetError`].
    pub fn spawn_submitting<N, F>(
        n: usize,
        make: F,
    ) -> Result<SubmittingCluster<O, N::Request>, NetError>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        ClusterBuilder::new(n).spawn_submitting(make).map(|(cluster, _)| cluster)
    }

    /// Stops node `id` abruptly — the in-process stand-in for `kill -9`:
    /// its threads wind down without any shutdown protocol, sockets break
    /// mid-stream, and nothing is flushed that was not already flushed.
    /// The rest of the cluster keeps running; peers' link supervisors
    /// buffer, re-dial, and re-handshake on their own.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kill(&self, id: NodeId) {
        self.handles[id.index()].abort();
    }

    /// Restarts slot `id` with the state machine `node` — the
    /// crash-recovery path. The old node (if still running) is killed, the
    /// listen address is re-bound (waiting out the dying accept loop's
    /// `AddrInUse` window), and `node` takes over the slot: same address,
    /// same output channel, same link plan and metrics. A durable `node`
    /// restored from disk announces its bumped incarnation in every
    /// handshake, so peers drop frames buffered for its previous life.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the address cannot be re-bound within the window.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn restart_node<N>(&mut self, id: NodeId, node: N) -> Result<(), NetError>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
    {
        self.handles[id.index()].abort();
        let listener = self.topology.bind_retry(id, REBIND_WINDOW)?;
        let (handle, _events) = run_node_inner::<N, std::convert::Infallible>(
            node,
            id,
            listener,
            self.topology.clone(),
            self.tx.clone(),
            self.setup.clone(),
            None,
            |_, never| match never {},
        )?;
        self.handles[id.index()] = handle;
        Ok(())
    }

    /// Like [`Cluster::restart_node`] for [`Submitter`] nodes: the
    /// replacement also gets a fresh [`SubmitHandle`] (handles of the
    /// killed node are dead and return [`crate::SubmitClosed`]).
    ///
    /// # Errors
    ///
    /// As [`Cluster::restart_node`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn restart_submitter<N>(
        &mut self,
        id: NodeId,
        node: N,
    ) -> Result<SubmitHandle<N::Request>, NetError>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: Send + 'static,
        O: Send + 'static,
    {
        self.handles[id.index()].abort();
        let listener = self.topology.bind_retry(id, REBIND_WINDOW)?;
        let (handle, submit) = run_submitter_inner(
            node,
            id,
            listener,
            self.topology.clone(),
            self.tx.clone(),
            self.setup.clone(),
            None,
        )?;
        self.handles[id.index()] = handle;
        Ok(submit)
    }

    /// The addresses this cluster's nodes listen on — what a TCP client
    /// fleet needs to dial the nodes of a [`ClusterBuilder::spawn_serving`]
    /// cluster.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Waits for the next protocol output from any node.
    pub fn next_output(&mut self) -> Option<(NodeId, O)> {
        self.outputs.recv().ok()
    }

    /// Waits for the next protocol output, giving up after `timeout`.
    pub fn next_output_timeout(&mut self, timeout: Duration) -> Option<(NodeId, O)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

/// `k` independent clusters running in parallel threads — the net-layer
/// counterpart of the simulator's deterministic `ShardedSim`
/// (`tetrabft-multishot`): each shard is a full consensus group on its own
/// engine instances, so aggregate throughput scales with `k` across OS
/// threads (the simulator is single-threaded by design; this layer is not).
///
/// Every shard's outputs are funneled into one merged channel, tagged with
/// the shard index, so waiting blocks (no polling) and ends early once all
/// nodes have stopped. Reassembling the single global finalized stream is
/// the consumer's job (for multi-shot shards,
/// `tetrabft_multishot::FinalizedMerge` does exactly that).
///
/// Dropping the sharded cluster stops every node of every shard.
#[derive(Debug)]
pub struct ShardedCluster<O> {
    merged: mpsc::Receiver<(usize, NodeId, O)>,
    /// Per shard, the node stop handles (abort-on-drop).
    handles: Vec<Vec<NodeHandle>>,
}

impl<O> ShardedCluster<O> {
    /// Spawns `k` shards of `n` nodes each; `make` receives the shard
    /// index and node id.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors as [`NetError`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn spawn<N, F>(k: usize, n: usize, mut make: F) -> Result<ShardedCluster<O>, NetError>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(usize, NodeId) -> N,
    {
        assert!(k > 0, "at least one shard");
        let (merged_tx, merged) = mpsc::channel();
        let mut handles = Vec::with_capacity(k);
        for j in 0..k {
            let Cluster { outputs, handles: shard_handles, .. } =
                Cluster::spawn(n, |id| make(j, id))?;
            handles.push(shard_handles);
            // Forwarder: tags the shard's outputs and exits when its node
            // threads stop (their senders drop); once every forwarder is
            // gone the merged channel disconnects, so receivers fail fast
            // instead of sleeping out their timeout.
            let tx = merged_tx.clone();
            std::thread::spawn(move || {
                while let Ok((node, out)) = outputs.recv() {
                    if tx.send((j, node, out)).is_err() {
                        return;
                    }
                }
            });
        }
        Ok(ShardedCluster { merged, handles })
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.handles.len()
    }

    /// Waits (blocking) for the next output from any shard:
    /// `Some((shard, node, output))`, or `None` once `timeout` elapses or
    /// every node of every shard has stopped.
    pub fn next_output_timeout(&mut self, timeout: Duration) -> Option<(usize, NodeId, O)> {
        self.merged.recv_timeout(timeout).ok()
    }
}
