//! Localhost cluster orchestration: flat clusters, submitting clusters,
//! and the sharded multi-instance mode.

use std::io;
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

use tetrabft_engine::{Node, Submitter};
use tetrabft_types::NodeId;
use tetrabft_wire::Wire;

use crate::runner::{run_node, run_submitter, NodeHandle, SubmitHandle};

/// A running localhost cluster: `n` nodes in one process, real TCP between
/// them.
///
/// Dropping the cluster stops every node.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Cluster<O> {
    outputs: mpsc::Receiver<(NodeId, O)>,
    handles: Vec<NodeHandle>,
}

/// What [`Cluster::spawn_submitting`] yields: the cluster plus one
/// [`SubmitHandle`] per node (indexed by [`NodeId`]).
pub type SubmittingCluster<O, R> = (Cluster<O>, Vec<SubmitHandle<R>>);

fn bind_all(n: usize) -> io::Result<(Vec<TcpListener>, Vec<std::net::SocketAddr>)> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        listeners.push(listener);
    }
    Ok((listeners, addrs))
}

impl<O> Cluster<O> {
    /// Binds `n` ephemeral listeners on 127.0.0.1 and spawns one node per
    /// listener, built by `make`.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn spawn<N, F>(n: usize, mut make: F) -> io::Result<Cluster<O>>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        let (listeners, addrs) = bind_all(n)?;
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = NodeId(i as u16);
            let handle = run_node(make(id), id, listener, addrs.clone(), tx.clone())?;
            handles.push(handle);
        }
        Ok(Cluster { outputs: rx, handles })
    }

    /// Like [`Cluster::spawn`] for nodes accepting client submissions:
    /// also returns one [`SubmitHandle`] per node, feeding requests into
    /// that node's engine mux at runtime.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn spawn_submitting<N, F>(
        n: usize,
        mut make: F,
    ) -> io::Result<SubmittingCluster<O, N::Request>>
    where
        N: Submitter<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        N::Request: Send + 'static,
        O: Send + 'static,
        F: FnMut(NodeId) -> N,
    {
        let (listeners, addrs) = bind_all(n)?;
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::with_capacity(n);
        let mut submitters = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let id = NodeId(i as u16);
            let (handle, submit) =
                run_submitter(make(id), id, listener, addrs.clone(), tx.clone())?;
            handles.push(handle);
            submitters.push(submit);
        }
        Ok((Cluster { outputs: rx, handles }, submitters))
    }

    /// Waits for the next protocol output from any node.
    pub fn next_output(&mut self) -> Option<(NodeId, O)> {
        self.outputs.recv().ok()
    }

    /// Waits for the next protocol output, giving up after `timeout`.
    pub fn next_output_timeout(&mut self, timeout: Duration) -> Option<(NodeId, O)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

/// `k` independent clusters running in parallel threads — the net-layer
/// counterpart of the simulator's deterministic `ShardedSim`
/// (`tetrabft-multishot`): each shard is a full consensus group on its own
/// engine instances, so aggregate throughput scales with `k` across OS
/// threads (the simulator is single-threaded by design; this layer is not).
///
/// Every shard's outputs are funneled into one merged channel, tagged with
/// the shard index, so waiting blocks (no polling) and ends early once all
/// nodes have stopped. Reassembling the single global finalized stream is
/// the consumer's job (for multi-shot shards,
/// `tetrabft_multishot::FinalizedMerge` does exactly that).
///
/// Dropping the sharded cluster stops every node of every shard.
#[derive(Debug)]
pub struct ShardedCluster<O> {
    merged: mpsc::Receiver<(usize, NodeId, O)>,
    /// Per shard, the node stop handles (abort-on-drop).
    handles: Vec<Vec<NodeHandle>>,
}

impl<O> ShardedCluster<O> {
    /// Spawns `k` shards of `n` nodes each; `make` receives the shard
    /// index and node id.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn spawn<N, F>(k: usize, n: usize, mut make: F) -> io::Result<ShardedCluster<O>>
    where
        N: Node<Output = O> + Send + 'static,
        N::Msg: Wire + Send + 'static,
        O: Send + 'static,
        F: FnMut(usize, NodeId) -> N,
    {
        assert!(k > 0, "at least one shard");
        let (merged_tx, merged) = mpsc::channel();
        let mut handles = Vec::with_capacity(k);
        for j in 0..k {
            let Cluster { outputs, handles: shard_handles } = Cluster::spawn(n, |id| make(j, id))?;
            handles.push(shard_handles);
            // Forwarder: tags the shard's outputs and exits when its node
            // threads stop (their senders drop); once every forwarder is
            // gone the merged channel disconnects, so receivers fail fast
            // instead of sleeping out their timeout.
            let tx = merged_tx.clone();
            std::thread::spawn(move || {
                while let Ok((node, out)) = outputs.recv() {
                    if tx.send((j, node, out)).is_err() {
                        return;
                    }
                }
            });
        }
        Ok(ShardedCluster { merged, handles })
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.handles.len()
    }

    /// Waits (blocking) for the next output from any shard:
    /// `Some((shard, node, output))`, or `None` once `timeout` elapses or
    /// every node of every shard has stopped.
    pub fn next_output_timeout(&mut self, timeout: Duration) -> Option<(usize, NodeId, O)> {
        self.merged.recv_timeout(timeout).ok()
    }
}
