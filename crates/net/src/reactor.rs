//! The per-node event loop: every socket the node touches — its listener,
//! every inbound peer/client connection, every supervised outbound link —
//! multiplexed onto **one** thread with readiness-based polling (the
//! `polling` shim: epoll, with a portable `poll(2)` fallback).
//!
//! Together with the engine loop in `runner.rs` this fixes the node's
//! thread budget at **two**, independent of cluster size or client count:
//! where the old runtime spawned an accept thread, a reader thread per
//! inbound connection, a supervisor thread per outbound edge, and a timer
//! thread, the reactor holds them all as state:
//!
//! * the listener is polled for accept readiness; accepted connections
//!   run a non-blocking hello state machine (10-byte hello in, 8-byte
//!   incarnation ack out) before streaming length-prefixed frames into
//!   the zero-copy [`FrameDecoder`];
//! * a hello naming the reserved client id (`0xFFFF`) marks a **client
//!   submission connection** (only honored when the node runs with a
//!   request codec — see `Cluster::spawn_serving`): its frames decode as
//!   client requests and enter the engine mux as submissions, which is
//!   how one node serves thousands of submitting clients without a
//!   thread per connection;
//! * outbound links are [`Link`] state machines (dial → handshake → up,
//!   with jittered backoff, incarnation fencing, bounded buffered
//!   resume — see `supervisor.rs`);
//! * the engine hands staged frame batches over a channel and wakes the
//!   reactor via [`Poller::notify`]; `NetControl` cut flags and scripted
//!   partition windows are observed within one poll tick (25 ms).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use polling::{Event as PollEvent, Events, Poller};

use tetrabft_types::NodeId;
use tetrabft_wire::frame::FrameDecoder;
use tetrabft_wire::Wire;

use crate::link::LinkSetup;
use crate::runner::Event;
use crate::supervisor::{Link, LinkConfig};
use crate::topology::Topology;

/// The hello id that marks a client submission connection instead of a
/// peer. Never a valid [`NodeId`] slot (topologies are far smaller), so
/// peers and clients share one listen port. A TCP client dials a node,
/// sends the 10-byte hello (`CLIENT_HELLO_ID` big-endian + 8 zero bytes),
/// reads the 8-byte ack, then streams length-prefixed request frames.
pub const CLIENT_HELLO_ID: u16 = 0xFFFF;

/// Upper bound on one poller wait, so cut flags, partition-window starts,
/// and the stop flag are noticed promptly even on an idle node.
const POLL: Duration = Duration::from_millis(25);

/// Per readiness event, how many buffer-fulls one connection may read
/// before the reactor moves on (re-arming keeps the remainder pending), so
/// one firehose connection cannot starve the rest of the node.
const READS_PER_EVENT: usize = 16;

const LISTENER_KEY: usize = 0;

/// Decodes one client frame into a request; `None` at a use site means
/// the node refuses client connections entirely (peer-only node).
pub(crate) type SubmitCodec<R> = fn(&[u8]) -> Option<R>;

/// Everything the reactor thread needs to run one node's I/O.
pub(crate) struct ReactorConfig<R> {
    pub me: NodeId,
    pub my_incarnation: u64,
    pub listener: TcpListener,
    pub topology: Topology,
    pub links: LinkSetup,
    /// Decodes a client frame into a request; `None` refuses client
    /// connections (peer-only node).
    pub codec: Option<SubmitCodec<R>>,
    pub stop: Arc<AtomicBool>,
}

/// One accepted connection's progress through hello → ack → streaming.
enum InState {
    /// Reading the 10-byte hello (sender id + sender incarnation).
    Hello { buf: [u8; 10], got: usize },
    /// Writing our 8-byte incarnation ack back.
    Ack { from: Option<NodeId>, sent: usize },
    /// Streaming frames; `None` is a client submission connection.
    Streaming { from: Option<NodeId> },
}

struct Inbound {
    stream: TcpStream,
    state: InState,
    decoder: FrameDecoder,
}

/// Runs one node's reactor until the stop flag is raised or the engine
/// side goes away. `cmd_rx` carries staged outbound batches from the
/// engine's flush (paired with a [`Poller::notify`]); `events` feeds
/// decoded inputs into the engine mux.
pub(crate) fn run_reactor<M, R>(
    cfg: ReactorConfig<R>,
    poller: Arc<Poller>,
    cmd_rx: mpsc::Receiver<(NodeId, Vec<Arc<Vec<u8>>>)>,
    events: mpsc::Sender<Event<M, R>>,
) where
    M: Wire,
{
    let n = cfg.topology.len();
    if cfg.listener.set_nonblocking(true).is_err() {
        return;
    }
    if poller.add(&cfg.listener, PollEvent::readable(LISTENER_KEY)).is_err() {
        return;
    }

    // Outbound links, keyed 1 + peer index (our own slot stays None).
    let mut links: Vec<Option<Link>> = (0..n)
        .map(|i| {
            let peer = NodeId(i as u16);
            if peer == cfg.me {
                return None;
            }
            let link_cfg = LinkConfig {
                me: cfg.me,
                my_incarnation: cfg.my_incarnation,
                addr: cfg.topology.addr(peer),
                conditioner: cfg.links.conditioner(cfg.me, peer),
                cut: cfg.links.cut_flag(cfg.me, peer),
                metrics: Arc::clone(&cfg.links.metrics),
            };
            // An independent jitter stream per directed edge, offset from
            // the conditioner's seed derivation so the two never correlate.
            let jitter_seed = cfg.links.seed.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ ((u64::from(cfg.me.0) << 16) | u64::from(peer.0));
            Some(Link::new(link_cfg, 1 + i, jitter_seed))
        })
        .collect();

    let mut conns: HashMap<usize, Inbound> = HashMap::new();
    let mut next_key = n + 1;
    let mut poll_events = Events::new();
    let mut read_buf = vec![0u8; 64 * 1024];

    loop {
        if cfg.stop.load(Ordering::Relaxed) {
            return; // drops the listener, every conn, and every link
        }

        // Stage whatever the engine flushed since the last pass.
        let mut now = Instant::now();
        loop {
            match cmd_rx.try_recv() {
                Ok((peer, batch)) => {
                    if let Some(link) = links.get_mut(peer.index()).and_then(Option::as_mut) {
                        link.enqueue(batch, now);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return, // engine gone
            }
        }

        // Supervision pass: dials, deadlines, due-frame writes; collect the
        // earliest instant anything needs us again.
        let mut wait = POLL;
        for link in links.iter_mut().flatten() {
            if let Some(deadline) = link.housekeep(now, &poller) {
                wait = wait.min(deadline.saturating_duration_since(now));
            }
        }

        cfg.links.metrics.poll_wakeups.fetch_add(1, Ordering::Relaxed);
        if poller.wait(&mut poll_events, Some(wait)).is_err() {
            return;
        }
        now = Instant::now();

        for ev in poll_events.iter() {
            match ev.key {
                LISTENER_KEY => {
                    accept_all(&cfg, &poller, &mut conns, &mut next_key);
                    // The listener's oneshot registration needs re-arming.
                    let _ = poller.modify(&cfg.listener, PollEvent::readable(LISTENER_KEY));
                }
                key if key <= n => {
                    if let Some(link) = links.get_mut(key - 1).and_then(Option::as_mut) {
                        link.on_event(ev, now, &poller);
                    }
                }
                key => {
                    let Some(conn) = conns.get_mut(&key) else { continue };
                    let keep = advance_inbound(&cfg, conn, &mut read_buf, &events);
                    if keep {
                        let interest = match conn.state {
                            InState::Hello { .. } | InState::Streaming { .. } => {
                                PollEvent::readable(key)
                            }
                            InState::Ack { .. } => PollEvent::writable(key),
                        };
                        let _ = poller.modify(&conn.stream, interest);
                    } else {
                        let _ = poller.delete(&conn.stream);
                        conns.remove(&key);
                    }
                }
            }
        }
    }
}

/// Accepts every pending connection and registers it in hello state.
fn accept_all<R>(
    cfg: &ReactorConfig<R>,
    poller: &Poller,
    conns: &mut HashMap<usize, Inbound>,
    next_key: &mut usize,
) {
    loop {
        match cfg.listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let key = *next_key;
                *next_key += 1;
                if poller.add(&stream, PollEvent::readable(key)).is_ok() {
                    conns.insert(
                        key,
                        Inbound {
                            stream,
                            state: InState::Hello { buf: [0; 10], got: 0 },
                            decoder: FrameDecoder::new(),
                        },
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient per-connection accept failures (ECONNABORTED & co);
            // the listener itself stays healthy.
            Err(_) => return,
        }
    }
}

/// Drives one inbound connection as far as its socket allows. Returns
/// `false` when the connection should be closed.
fn advance_inbound<M, R>(
    cfg: &ReactorConfig<R>,
    conn: &mut Inbound,
    read_buf: &mut [u8],
    events: &mpsc::Sender<Event<M, R>>,
) -> bool
where
    M: Wire,
{
    loop {
        match &mut conn.state {
            InState::Hello { buf, got } => {
                while *got < buf.len() {
                    match (&conn.stream).read(&mut buf[*got..]) {
                        Ok(0) => return false,
                        Ok(k) => *got += k,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
                let claimed = u16::from_be_bytes([buf[0], buf[1]]);
                // (The dialer's incarnation, buf[2..10], is carried for
                // symmetry and future inbound fencing; attribution alone
                // doesn't need it.)
                let from = if claimed == CLIENT_HELLO_ID && cfg.codec.is_some() {
                    None // a client submission connection
                } else if usize::from(claimed) >= cfg.topology.len() || claimed == cfg.me.0 {
                    // The hello is a claim, and on a real (non-localhost)
                    // topology anything can reach the listen port: a claimed
                    // id outside the cluster — or our own, which only the
                    // in-process loopback path may use — would index
                    // per-peer state out of bounds downstream. Hang up.
                    return false;
                } else {
                    Some(NodeId(claimed))
                };
                conn.state = InState::Ack { from, sent: 0 };
            }
            InState::Ack { from, sent } => {
                // Ack with our incarnation: the dialer compares it against
                // the one it last saw and discards frames buffered for a
                // previous life of this node; a client reads it as
                // connection acceptance.
                let ack = cfg.my_incarnation.to_be_bytes();
                while *sent < ack.len() {
                    match (&conn.stream).write(&ack[*sent..]) {
                        Ok(0) => return false,
                        Ok(k) => *sent += k,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
                conn.state = InState::Streaming { from: *from };
            }
            InState::Streaming { from } => {
                for _ in 0..READS_PER_EVENT {
                    match (&conn.stream).read(read_buf) {
                        Ok(0) => return false,
                        Ok(k) => {
                            cfg.links.metrics.note_received(k as u64, *from);
                            conn.decoder.extend(&read_buf[..k]);
                            if !drain_frames(cfg, &mut conn.decoder, *from, events) {
                                return false;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => return false,
                    }
                }
                // Budget spent; the oneshot re-arm redelivers the pending
                // readability so the remainder is read on the next pass.
                return true;
            }
        }
    }
}

/// Decodes every complete frame buffered in `decoder` and feeds it into
/// the engine mux. Returns `false` if the stream is corrupt or the engine
/// is gone.
fn drain_frames<M, R>(
    cfg: &ReactorConfig<R>,
    decoder: &mut FrameDecoder,
    from: Option<NodeId>,
    events: &mpsc::Sender<Event<M, R>>,
) -> bool
where
    M: Wire,
{
    loop {
        // Frames are decoded zero-copy out of the decoder's buffer.
        let frame = match decoder.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return true,
            Err(_) => return false, // framing desync is unrecoverable
        };
        match from {
            Some(peer) => match M::from_bytes(frame) {
                Ok(msg) => {
                    if events.send(Event::Deliver { from: peer, msg }).is_err() {
                        return false; // node shut down
                    }
                }
                Err(_) => {
                    // Malformed traffic is an adversarial act; ignore the
                    // frame but keep the (authenticated) channel alive.
                }
            },
            None => {
                let decode = cfg.codec.expect("client connections require a codec");
                if let Some(req) = decode(frame) {
                    if events.send(Event::Submit(req)).is_err() {
                        return false;
                    }
                }
                // A frame that fails the request codec is dropped like any
                // other malformed traffic.
            }
        }
    }
}
