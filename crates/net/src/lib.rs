//! TCP deployment for TetraBFT state machines — the "implement
//! Multi-shot TetraBFT and conduct a practical evaluation" direction the
//! paper lists as future work.
//!
//! The same sans-I/O [`tetrabft_engine::Node`] state machines the
//! simulator drives run here over real sockets (std networking, one
//! thread per connection — no async runtime dependency), through the very
//! same [`tetrabft_engine::Engine`] loop — this crate only provides the
//! threaded TCP [`tetrabft_engine::Transport`]:
//!
//! * every node listens on a TCP address and dials every peer (full mesh);
//! * a connection is an **authenticated channel**: the 2-byte hello frame
//!   names the sender, and the process trusts the OS connection thereafter
//!   — the paper's channel model, with no signatures anywhere;
//! * messages travel as length-prefixed frames ([`tetrabft_wire::frame`])
//!   of the hand-rolled wire encoding;
//! * protocol ticks map to milliseconds (a `tetrabft::Params` built with
//!   `Params::new(50)` means Δ = 50 ms).
//!
//! # Examples
//!
//! Run a 4-node TetraBFT cluster on localhost and wait for all decisions:
//!
//! ```no_run
//! use tetrabft::{Params, TetraNode};
//! use tetrabft_net::Cluster;
//! use tetrabft_types::{Config, Value};
//!
//! # fn main() -> std::io::Result<()> {
//! let cfg = Config::new(4).unwrap();
//! let mut cluster =
//!     Cluster::spawn(4, |id| TetraNode::new(cfg, Params::new(200), id, Value::from_u64(7)))?;
//! for _ in 0..4 {
//!     let (node, decided) = cluster.next_output().unwrap();
//!     println!("{node} decided {decided}");
//! }
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod runner;

pub use cluster::{Cluster, ShardedCluster, SubmittingCluster};
pub use runner::{run_node, run_submitter, NodeHandle, SubmitClosed, SubmitHandle};
