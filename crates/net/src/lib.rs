//! TCP deployment for TetraBFT state machines — the "implement
//! Multi-shot TetraBFT and conduct a practical evaluation" direction the
//! paper lists as future work, with the fault-injecting network layer that
//! evaluation needs.
//!
//! The same sans-I/O [`tetrabft_engine::Node`] state machines the
//! simulator drives run here over real sockets (std networking, one
//! thread per connection — no async runtime dependency), through the very
//! same [`tetrabft_engine::Engine`] loop — this crate only provides the
//! threaded TCP [`tetrabft_engine::Transport`]:
//!
//! * every node listens on a [`Topology`]-declared TCP address (ephemeral
//!   OS-assigned localhost ports by default, arbitrary `SocketAddr`s for
//!   real deployments) and dials every peer (full mesh);
//! * every outbound link is **supervised**: it dials with capped
//!   exponential backoff, re-handshakes after drops, and resends frames
//!   whose flush was never confirmed — a flapping connection delays
//!   traffic but cannot wedge a node (delivery is at-least-once across
//!   reconnects up to a bounded per-link buffer; protocol messages are
//!   idempotent votes and buffer overflow degrades to ordinary loss);
//! * links can be **conditioned** by the same declarative
//!   [`LinkPlan`] the simulator consumes — per-edge one-way delay, jitter,
//!   drop probability, and scripted partition windows — so one scenario
//!   runs identically in virtual and wall-clock time, and [`NetControl`]
//!   can kill live sockets mid-run;
//! * a connection is an **authenticated channel**: the 10-byte hello
//!   names the sender and its durable incarnation, the acceptor acks with
//!   its own, and the process trusts the OS connection thereafter — the
//!   paper's channel model, with no signatures anywhere; an incarnation
//!   that advanced since the last handshake fences off frames buffered
//!   for the peer's previous life;
//! * messages travel as length-prefixed frames ([`tetrabft_wire::frame`])
//!   of the hand-rolled wire encoding;
//! * protocol ticks map to milliseconds (a `tetrabft::Params` built with
//!   `Params::new(50)` means Δ = 50 ms).
//!
//! # Examples
//!
//! Run a 4-node TetraBFT cluster on localhost and wait for all decisions:
//!
//! ```no_run
//! use tetrabft::{Params, TetraNode};
//! use tetrabft_net::Cluster;
//! use tetrabft_types::{Config, Value};
//!
//! # fn main() -> Result<(), tetrabft_net::NetError> {
//! let cfg = Config::new(4).unwrap();
//! let mut cluster =
//!     Cluster::spawn(4, |id| TetraNode::new(cfg, Params::new(200), id, Value::from_u64(7)))?;
//! for _ in 0..4 {
//!     let (node, decided) = cluster.next_output().unwrap();
//!     println!("{node} decided {decided}");
//! }
//! # Ok(()) }
//! ```
//!
//! See [`ClusterBuilder`] for WAN conditioning and fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod link;
mod reactor;
mod runner;
mod supervisor;
mod topology;

pub use cluster::{Cluster, ClusterBuilder, ShardedCluster, SubmittingCluster};
pub use link::{NetControl, NetStats, PeerTraffic};
pub use reactor::CLIENT_HELLO_ID;
pub use runner::{run_node, run_submitter, NodeHandle, SubmitClosed, SubmitHandle};
pub use topology::{NetError, Topology, TopologyError};
// The request-decode half of the TCP submit path lives with the engine so
// every runtime shares it; re-export for serving-cluster embedders.
pub use tetrabft_engine::FrameRequest;
// The scenario language is shared with the simulator; re-export it so TCP
// embedders keep a single import path.
pub use tetrabft_sim::{EdgeSpec, LinkPlan, PartitionWindow};
