//! Declarative peer topologies and the typed errors of the TCP layer.
//!
//! A [`Topology`] names where every node of a cluster listens — arbitrary
//! [`SocketAddr`]s, not hardcoded localhost ports. In-process clusters
//! derive their ports from the OS ([`Topology::bind_ephemeral`] binds
//! `127.0.0.1:0` per node and reads the assigned addresses back — the
//! "topology exchange" — so parallel test runs can never collide);
//! multi-process deployments parse an explicit spec with
//! [`Topology::parse`] and hand each process the same topology.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::str::FromStr;
use std::time::{Duration, Instant};

use tetrabft_types::NodeId;

/// A malformed topology specification.
#[derive(Debug)]
pub enum TopologyError {
    /// A topology needs at least one node.
    Empty,
    /// More nodes than [`NodeId`] can address.
    TooManyNodes(usize),
    /// An entry did not parse as a socket address.
    BadAddr {
        /// Position of the bad entry.
        index: usize,
        /// The offending text.
        text: String,
    },
    /// Two nodes share one address — they would dial themselves.
    Duplicate {
        /// Position of the second occurrence.
        index: usize,
        /// The duplicated address.
        addr: SocketAddr,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no nodes"),
            TopologyError::TooManyNodes(n) => {
                write!(f, "topology has {n} nodes; NodeId is 16-bit")
            }
            TopologyError::BadAddr { index, text } => {
                write!(f, "node {index}: `{text}` is not a socket address")
            }
            TopologyError::Duplicate { index, addr } => {
                write!(f, "node {index}: address {addr} already taken by an earlier node")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// What can go wrong spinning up the TCP layer.
#[derive(Debug)]
pub enum NetError {
    /// Binding a node's listen address failed.
    Bind {
        /// The address that could not be bound.
        addr: SocketAddr,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Configuring or inspecting a bound listener failed.
    Listener {
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The topology itself is malformed.
    Topology(TopologyError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            NetError::Listener { source } => write!(f, "cannot configure listener: {source}"),
            NetError::Topology(e) => write!(f, "bad topology: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Bind { source, .. } | NetError::Listener { source } => Some(source),
            NetError::Topology(e) => Some(e),
        }
    }
}

impl From<TopologyError> for NetError {
    fn from(e: TopologyError) -> Self {
        NetError::Topology(e)
    }
}

/// Where every node of a cluster listens, indexed by [`NodeId`].
///
/// # Examples
///
/// ```
/// use tetrabft_net::Topology;
/// use tetrabft_types::NodeId;
///
/// let topo: Topology = "10.0.0.1:4100,10.0.0.2:4100,10.0.0.3:4100".parse()?;
/// assert_eq!(topo.len(), 3);
/// assert_eq!(topo.addr(NodeId(1)).port(), 4100);
/// # Ok::<(), tetrabft_net::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    addrs: Vec<SocketAddr>,
}

impl Topology {
    /// Builds a topology from explicit per-node addresses (index =
    /// [`NodeId`]).
    ///
    /// # Errors
    ///
    /// [`TopologyError`] if the list is empty, exceeds the id space, or
    /// repeats an address.
    pub fn new(addrs: Vec<SocketAddr>) -> Result<Self, TopologyError> {
        if addrs.is_empty() {
            return Err(TopologyError::Empty);
        }
        if addrs.len() > usize::from(u16::MAX) {
            return Err(TopologyError::TooManyNodes(addrs.len()));
        }
        for (index, addr) in addrs.iter().enumerate() {
            if addrs[..index].contains(addr) {
                return Err(TopologyError::Duplicate { index, addr: *addr });
            }
        }
        Ok(Topology { addrs })
    }

    /// Parses a comma-separated address list, e.g.
    /// `"10.0.0.1:4100,10.0.0.2:4100"`.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on any unparseable or duplicate entry.
    pub fn parse(spec: &str) -> Result<Self, TopologyError> {
        let mut addrs = Vec::new();
        for (index, part) in spec.split(',').map(str::trim).filter(|p| !p.is_empty()).enumerate() {
            let addr = part
                .parse()
                .map_err(|_| TopologyError::BadAddr { index, text: part.to_string() })?;
            addrs.push(addr);
        }
        Topology::new(addrs)
    }

    /// Binds `n` OS-assigned ephemeral ports on localhost and returns the
    /// listeners together with the resulting topology — the in-process
    /// topology exchange that replaces fixed base ports (which collide
    /// under parallel test runs).
    ///
    /// # Errors
    ///
    /// [`NetError::Bind`] if the loopback interface refuses a socket.
    pub fn bind_ephemeral(n: usize) -> Result<(Vec<TcpListener>, Topology), NetError> {
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        let any: SocketAddr = ([127, 0, 0, 1], 0).into();
        for _ in 0..n {
            let listener =
                TcpListener::bind(any).map_err(|source| NetError::Bind { addr: any, source })?;
            addrs.push(listener.local_addr().map_err(|source| NetError::Listener { source })?);
            listeners.push(listener);
        }
        Ok((listeners, Topology::new(addrs)?))
    }

    /// Binds this topology's address for node `me`.
    ///
    /// # Errors
    ///
    /// [`NetError::Bind`] if the address is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn bind(&self, me: NodeId) -> Result<TcpListener, NetError> {
        let addr = self.addr(me);
        TcpListener::bind(addr).map_err(|source| NetError::Bind { addr, source })
    }

    /// Binds node `me`'s address like [`Topology::bind`], but keeps
    /// retrying `AddrInUse` for up to `window` — the restart path: a node
    /// rebinding its own port races its dying accept loop, which holds the
    /// listener for one final ≤20 ms poll (and the OS may lag the release
    /// slightly further). Any other bind failure still fails immediately.
    ///
    /// # Errors
    ///
    /// [`NetError::Bind`] if the address is still in use when the window
    /// closes, or at once for non-`AddrInUse` failures.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn bind_retry(&self, me: NodeId, window: Duration) -> Result<TcpListener, NetError> {
        let addr = self.addr(me);
        let deadline = Instant::now() + window;
        loop {
            match TcpListener::bind(addr) {
                Ok(listener) => return Ok(listener),
                Err(source) if source.kind() == io::ErrorKind::AddrInUse => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Bind { addr, source });
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(source) => return Err(NetError::Bind { addr, source }),
            }
        }
    }

    /// Binds every node's address, in id order (in-process clusters on an
    /// explicit topology).
    ///
    /// # Errors
    ///
    /// [`NetError::Bind`] on the first unavailable address.
    pub fn bind_all(&self) -> Result<Vec<TcpListener>, NetError> {
        (0..self.addrs.len() as u16).map(|i| self.bind(NodeId(i))).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` if the topology is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The listen address of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn addr(&self, id: NodeId) -> SocketAddr {
        self.addrs[usize::from(id.0)]
    }

    /// All addresses, indexed by node id.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }
}

impl FromStr for Topology {
    type Err = TopologyError;

    fn from_str(s: &str) -> Result<Self, TopologyError> {
        Topology::parse(s)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, addr) in self.addrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{addr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_display() {
        let topo = Topology::parse("127.0.0.1:4100, 127.0.0.1:4101,127.0.0.1:4102").unwrap();
        assert_eq!(topo.len(), 3);
        assert_eq!(topo.to_string(), "127.0.0.1:4100,127.0.0.1:4101,127.0.0.1:4102");
        assert_eq!(topo, topo.to_string().parse().unwrap());
        assert_eq!(topo.addr(NodeId(2)).port(), 4102);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert!(matches!(Topology::parse(""), Err(TopologyError::Empty)));
        assert!(matches!(
            Topology::parse("127.0.0.1:1,nonsense"),
            Err(TopologyError::BadAddr { index: 1, .. })
        ));
        assert!(matches!(
            Topology::parse("127.0.0.1:9,127.0.0.1:9"),
            Err(TopologyError::Duplicate { index: 1, .. })
        ));
    }

    #[test]
    fn ephemeral_bind_yields_distinct_live_ports() {
        let (listeners, topo) = Topology::bind_ephemeral(4).unwrap();
        assert_eq!(listeners.len(), 4);
        assert_eq!(topo.len(), 4);
        for (i, l) in listeners.iter().enumerate() {
            assert_eq!(l.local_addr().unwrap(), topo.addr(NodeId(i as u16)));
            assert_ne!(topo.addr(NodeId(i as u16)).port(), 0, "OS assigned a real port");
        }
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let (_keep, topo) = Topology::bind_ephemeral(1).unwrap();
        // The port is still held by `_keep`, so re-binding must fail loudly.
        match topo.bind(NodeId(0)) {
            Err(NetError::Bind { addr, .. }) => assert_eq!(addr, topo.addr(NodeId(0))),
            other => panic!("expected NetError::Bind, got {other:?}"),
        }
    }
}
