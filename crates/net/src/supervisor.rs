//! Connection supervision for one directed peer link.
//!
//! Each node runs one supervisor thread per outbound edge. The supervisor
//! owns the link's whole lifecycle so a flapping connection never wedges
//! the node:
//!
//! * **dial with capped exponential backoff** — peers boot in any order
//!   and may vanish mid-run; retries start at 10 ms and cap at 1 s;
//! * **re-handshake with incarnation exchange** — every (re)connection
//!   opens with a 10-byte hello (sender id + sender incarnation) and waits
//!   for the acceptor's 8-byte incarnation ack, so the receiving side can
//!   always attribute the stream *and* both sides learn whether the other
//!   restarted from disk since they last spoke;
//! * **stale-frame fencing** — when the ack shows the peer's incarnation
//!   advanced (it crashed and restarted), every frame buffered for the
//!   previous incarnation is discarded and counted
//!   (`NetStats::frames_dropped_stale`) instead of being replayed into
//!   the peer's freshly restored state;
//! * **buffered resume** — frames are held in a bounded queue
//!   ([`MAX_BUFFERED_FRAMES`] per link; beyond that the oldest is shed
//!   and counted) and only retired once a flush confirms them; anything
//!   unconfirmed when a connection breaks is rewritten after the
//!   reconnect. Within the buffer bound, delivery across reconnects is
//!   *at-least-once* (duplicates are harmless: every protocol message is
//!   an idempotent vote); a shed frame is an ordinary loss the protocol
//!   absorbs through view changes;
//! * **link conditioning** — the shared [`LinkPlan`]'s per-edge delay,
//!   jitter, and loss are applied before frames reach the socket, and
//!   scripted partition windows proactively sever the connection (frames
//!   buffer and become due at heal + delay, the same price
//!   `LinkPlan::route_at` charges in the simulator).
//!
//! [`LinkPlan`]: tetrabft_sim::LinkPlan

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use tetrabft_types::NodeId;

use crate::link::{EdgeConditioner, NetMetrics};

/// Frames a supervised link will not buffer beyond; the oldest frame is
/// shed first (newer consensus messages supersede older ones, and the
/// protocol recovers lost messages through view changes anyway).
pub(crate) const MAX_BUFFERED_FRAMES: usize = 4096;

const BACKOFF_MIN: Duration = Duration::from_millis(10);
const BACKOFF_MAX: Duration = Duration::from_millis(1000);
/// Cap on one blocking dial: a black-holed peer (dropping firewall, dead
/// host on a real WAN) never answers the SYN, and the OS default connect
/// timeout is minutes — far too long to stall the supervisor loop, which
/// also services cut flags, partition windows, and batch intake.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);
/// Upper bound on one wait, so cut flags and partition-window starts are
/// noticed promptly even on an idle link.
const POLL: Duration = Duration::from_millis(25);

/// Cap on waiting for the acceptor's incarnation ack: an unresponsive or
/// pre-handshake-era peer must not wedge the supervisor loop.
const ACK_TIMEOUT: Duration = Duration::from_millis(500);

/// One directed link's static configuration.
pub(crate) struct LinkConfig {
    pub me: NodeId,
    /// This node's own incarnation (0 for non-durable nodes), announced in
    /// every hello so the far side can fence *our* stale state too.
    pub my_incarnation: u64,
    pub addr: SocketAddr,
    pub conditioner: EdgeConditioner,
    /// One-shot fault injection: when set, the live socket is killed (and
    /// the flag consumed); the supervisor reconnects and resends.
    pub cut: Arc<AtomicBool>,
    pub metrics: Arc<NetMetrics>,
}

/// Runs the supervisor loop until the node shuts down (its sender side of
/// `rx` drops). Batches arrive from the transport's per-input flush.
pub(crate) fn run_link(mut cfg: LinkConfig, rx: mpsc::Receiver<Vec<Arc<Vec<u8>>>>) {
    // Conditioned frames not yet confirmed flushed, with their due times.
    let mut pending: VecDeque<(Instant, Arc<Vec<u8>>)> = VecDeque::new();
    let mut conn: Option<io::BufWriter<TcpStream>> = None;
    let mut connected_once = false;
    // The peer incarnation the buffered frames were produced against.
    let mut peer_incarnation: Option<u64> = None;
    let mut backoff = BACKOFF_MIN;
    let mut next_dial = Instant::now();

    loop {
        if cfg.cut.swap(false, Ordering::Relaxed) {
            teardown(&mut conn);
        }
        let now = Instant::now();
        let severed = cfg.conditioner.severed_until(now);
        if severed.is_some() {
            // Scripted partition: hold the line down; frames keep queueing.
            teardown(&mut conn);
        } else {
            // (Re)dial eagerly whenever down, so even idle links recover
            // and the cluster is warm before the first broadcast.
            if conn.is_none() && now >= next_dial {
                match dial(&cfg) {
                    Ok((writer, peer_inc)) => {
                        if connected_once {
                            cfg.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        connected_once = true;
                        // Resume is gated on the handshake: if the peer
                        // restarted since these frames were queued, they
                        // address a dead incarnation — drop them instead
                        // of replaying pre-crash traffic into the peer's
                        // restored state (it pulls what it needs via
                        // catch-up).
                        if peer_incarnation.is_some_and(|prev| peer_inc > prev) {
                            cfg.metrics
                                .frames_dropped_stale
                                .fetch_add(pending.len() as u64, Ordering::Relaxed);
                            pending.clear();
                        }
                        peer_incarnation = Some(peer_inc);
                        backoff = BACKOFF_MIN;
                        conn = Some(writer);
                    }
                    Err(_) => {
                        next_dial = now + backoff;
                        backoff = (backoff * 2).min(BACKOFF_MAX);
                    }
                }
            }
            if let Some(writer) = conn.as_mut() {
                // Write every due frame, then flush once; frames are only
                // retired by a confirmed flush, so a failure anywhere
                // leaves them queued for the next connection.
                let mut wrote = 0;
                let mut failed = false;
                while wrote < pending.len() && pending[wrote].0 <= now {
                    if writer.write_all(&pending[wrote].1).is_err() {
                        failed = true;
                        break;
                    }
                    wrote += 1;
                }
                if !failed && wrote > 0 {
                    failed = writer.flush().is_err();
                }
                if failed {
                    teardown(&mut conn);
                    cfg.metrics.frames_resent.fetch_add(wrote as u64, Ordering::Relaxed);
                    next_dial = Instant::now() + backoff;
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                } else {
                    pending.drain(..wrote);
                }
            }
        }

        // Sleep until the earliest thing that could need us: the next due
        // frame, the dial retry, a partition heal — capped by the poll
        // granularity that notices cut flags and window starts.
        let now = Instant::now();
        let mut wait = POLL;
        if let Some(heal) = severed {
            wait = wait.min(heal.saturating_duration_since(now));
        } else {
            if let Some((due, _)) = pending.front() {
                wait = wait.min(due.saturating_duration_since(now));
            }
            if conn.is_none() {
                wait = wait.min(next_dial.saturating_duration_since(now));
            }
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok(batch) => enqueue(batch, &mut pending, &mut cfg),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return, // node stopped
        }
        // Coalesce whatever else the node queued meanwhile.
        while let Ok(batch) = rx.try_recv() {
            enqueue(batch, &mut pending, &mut cfg);
        }
    }
}

fn enqueue(
    batch: Vec<Arc<Vec<u8>>>,
    pending: &mut VecDeque<(Instant, Arc<Vec<u8>>)>,
    cfg: &mut LinkConfig,
) {
    let now = Instant::now();
    for frame in batch {
        match cfg.conditioner.admit(now) {
            Some(due) => {
                pending.push_back((due, frame));
                if pending.len() > MAX_BUFFERED_FRAMES {
                    pending.pop_front();
                    cfg.metrics.frames_shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                cfg.metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn dial(cfg: &LinkConfig) -> io::Result<(io::BufWriter<TcpStream>, u64)> {
    let mut stream = TcpStream::connect_timeout(&cfg.addr, DIAL_TIMEOUT)?;
    let _ = stream.set_nodelay(true);
    // Re-handshake: every connection opens by naming the sender and its
    // incarnation. Written (and implicitly flushed) on the raw stream —
    // the acceptor will not ack until it sees the hello, so buffering it
    // behind the first batch would deadlock right here.
    let mut hello = [0u8; 10];
    hello[..2].copy_from_slice(&cfg.me.0.to_be_bytes());
    hello[2..].copy_from_slice(&cfg.my_incarnation.to_be_bytes());
    stream.write_all(&hello)?;
    // The ack carries the acceptor's incarnation; a bounded wait so a
    // stalled peer costs one backoff step, not a wedged supervisor.
    stream.set_read_timeout(Some(ACK_TIMEOUT))?;
    let mut ack = [0u8; 8];
    stream.read_exact(&mut ack)?;
    stream.set_read_timeout(None)?;
    Ok((io::BufWriter::with_capacity(64 * 1024, stream), u64::from_be_bytes(ack)))
}

fn teardown(conn: &mut Option<io::BufWriter<TcpStream>>) {
    if let Some(writer) = conn.take() {
        // Shut the socket down before the BufWriter drop tries to flush:
        // unconfirmed frames must stay queued here, not race out through a
        // destructor onto a link we consider dead.
        let _ = writer.get_ref().shutdown(Shutdown::Both);
    }
}
