//! Supervision of one directed peer link, expressed as reactor state.
//!
//! Up to PR 9 every outbound edge owned a thread (blocking dial, blocking
//! buffered writes); the reactor rewrite keeps the exact supervision
//! semantics but re-expresses them as a non-blocking state machine the
//! per-node [`crate::reactor`] drives off readiness events:
//!
//! * **dial with capped, jittered exponential backoff** — peers boot in
//!   any order and may vanish mid-run; retries start at 10 ms, cap at 1 s,
//!   and each wait adds up to +50% uniform jitter so a mass disconnect
//!   (whole-cluster restart, healed partition) does not redial in
//!   lockstep — the classic thundering-herd fix;
//! * **re-handshake with incarnation exchange** — every (re)connection
//!   opens with a 10-byte hello (sender id + sender incarnation) and waits
//!   for the acceptor's 8-byte incarnation ack, so the receiving side can
//!   always attribute the stream *and* both sides learn whether the other
//!   restarted from disk since they last spoke;
//! * **stale-frame fencing** — when the ack shows the peer's incarnation
//!   advanced (it crashed and restarted), every frame buffered for the
//!   previous incarnation is discarded and counted
//!   (`NetStats::frames_dropped_stale`) instead of being replayed into
//!   the peer's freshly restored state;
//! * **buffered resume** — frames are held in a bounded queue
//!   ([`MAX_BUFFERED_FRAMES`] per link; beyond that the oldest is shed
//!   and counted) and only retired once the kernel accepts their last
//!   byte; anything unretired when a connection breaks is rewritten after
//!   the reconnect. Within the buffer bound, delivery across reconnects
//!   is *at-least-once* (duplicates are harmless: every protocol message
//!   is an idempotent vote); a shed frame is an ordinary loss the
//!   protocol absorbs through view changes;
//! * **link conditioning** — the shared [`LinkPlan`]'s per-edge delay,
//!   jitter, and loss are applied before frames reach the socket, and
//!   scripted partition windows proactively sever the connection (frames
//!   buffer and become due at heal + delay, the same price
//!   `LinkPlan::route_at` charges in the simulator).
//!
//! [`LinkPlan`]: tetrabft_sim::LinkPlan

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polling::{Event, Poller};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tetrabft_types::NodeId;

use crate::link::{EdgeConditioner, NetMetrics};

/// Frames a supervised link will not buffer beyond; the oldest frame is
/// shed first (newer consensus messages supersede older ones, and the
/// protocol recovers lost messages through view changes anyway).
pub(crate) const MAX_BUFFERED_FRAMES: usize = 4096;

const BACKOFF_MIN: Duration = Duration::from_millis(10);
const BACKOFF_MAX: Duration = Duration::from_millis(1000);
/// Cap on one connection attempt: a black-holed peer (dropping firewall,
/// dead host on a real WAN) never answers the SYN, and the OS default
/// connect timeout is minutes — far too long to leave the link idle when
/// a redial could already be succeeding.
const DIAL_TIMEOUT: Duration = Duration::from_millis(250);
/// Cap on waiting for the acceptor's incarnation ack: an unresponsive or
/// pre-handshake-era peer must not hold the link half-open.
const ACK_TIMEOUT: Duration = Duration::from_millis(500);

/// One directed link's static configuration.
pub(crate) struct LinkConfig {
    pub me: NodeId,
    /// This node's own incarnation (0 for non-durable nodes), announced in
    /// every hello so the far side can fence *our* stale state too.
    pub my_incarnation: u64,
    pub addr: SocketAddr,
    pub conditioner: EdgeConditioner,
    /// One-shot fault injection: when set, the live socket is killed (and
    /// the flag consumed); the link reconnects and resends.
    pub cut: Arc<AtomicBool>,
    pub metrics: Arc<NetMetrics>,
}

/// Where one outbound connection currently stands.
enum LinkState {
    /// No socket; the next dial happens at `Link::next_dial`.
    Down,
    /// Non-blocking connect in flight; resolved by writable readiness
    /// (`SO_ERROR` tells success from refusal) or the deadline.
    Connecting { stream: TcpStream, deadline: Instant },
    /// Connected; writing the 10-byte hello, then reading the 8-byte
    /// incarnation ack.
    Handshake { stream: TcpStream, sent: usize, ack: [u8; 8], got: usize, deadline: Instant },
    /// Handshake complete: due frames flow.
    Up { stream: TcpStream },
}

/// One supervised outbound edge, driven by the reactor.
///
/// The reactor calls [`Link::enqueue`] when the engine flushes frames for
/// this peer, [`Link::on_event`] when the link's socket reports readiness,
/// and [`Link::housekeep`] every wakeup (cut flags, partition windows,
/// dial/ack deadlines, due-frame writes). The link keeps its poller
/// registration in sync itself, always under the same `key`.
pub(crate) struct Link {
    cfg: LinkConfig,
    /// This link's stable key in the reactor's poller.
    key: usize,
    state: LinkState,
    /// Conditioned frames not yet retired, with their due times.
    pending: VecDeque<(Instant, Arc<Vec<u8>>)>,
    /// Bytes of `pending.front()` already accepted by the kernel; a
    /// connection break mid-frame rewinds to 0 and rewrites the frame on
    /// the next connection (at-least-once, never a torn frame: each
    /// connection starts a fresh decoder on the far side).
    cursor: usize,
    /// Set when a write hit `WouldBlock`: the socket owes us writable
    /// readiness before more bytes fit.
    blocked: bool,
    connected_once: bool,
    /// The peer incarnation the buffered frames were produced against.
    peer_incarnation: Option<u64>,
    backoff: Duration,
    next_dial: Instant,
    /// Jitter source for the backoff (seeded per edge, deterministic).
    rng: StdRng,
    /// Interest currently armed in the poller, `None` when no socket is
    /// registered. Oneshot delivery disarms; whoever changes state re-arms.
    armed: Option<(bool, bool)>,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, key: usize, jitter_seed: u64) -> Self {
        Link {
            cfg,
            key,
            state: LinkState::Down,
            pending: VecDeque::new(),
            cursor: 0,
            blocked: false,
            connected_once: false,
            peer_incarnation: None,
            backoff: BACKOFF_MIN,
            next_dial: Instant::now(),
            rng: StdRng::seed_from_u64(jitter_seed),
            armed: None,
        }
    }

    /// Admits a batch of frames through the edge conditioner into the
    /// bounded pending queue (drops, sheds, and the send-queue high-water
    /// mark are counted here).
    pub(crate) fn enqueue(&mut self, batch: Vec<Arc<Vec<u8>>>, now: Instant) {
        for frame in batch {
            match self.cfg.conditioner.admit(now) {
                Some(due) => {
                    self.pending.push_back((due, frame));
                    if self.pending.len() > MAX_BUFFERED_FRAMES {
                        // Never shed the front frame mid-write: a torn frame
                        // would desynchronize the peer's decoder.
                        let at = usize::from(self.cursor > 0);
                        self.pending.remove(at);
                        self.cfg.metrics.frames_shed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => {
                    self.cfg.metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.cfg.metrics.note_queue_depth(self.pending.len() as u64);
    }

    /// One supervision pass: consume cut flags, honor partition windows,
    /// start dials, enforce handshake deadlines, write due frames. Returns
    /// the earliest instant at which this link needs another pass (`None`
    /// when it only reacts to readiness or new frames).
    pub(crate) fn housekeep(&mut self, now: Instant, poller: &Poller) -> Option<Instant> {
        if self.cfg.cut.swap(false, Ordering::Relaxed) {
            self.teardown(poller);
        }
        if let Some(heal) = self.cfg.conditioner.severed_until(now) {
            // Scripted partition: hold the line down; frames keep queueing.
            self.teardown(poller);
            return Some(heal);
        }
        match &mut self.state {
            LinkState::Down => {
                if now >= self.next_dial {
                    self.start_dial(now, poller);
                }
            }
            LinkState::Connecting { deadline, .. } | LinkState::Handshake { deadline, .. } => {
                if now >= *deadline {
                    self.retire_connection(poller, now);
                }
            }
            LinkState::Up { .. } => {
                self.pump(now, poller);
            }
        }
        self.sync_interest(poller);
        match &self.state {
            LinkState::Down => Some(self.next_dial),
            LinkState::Connecting { deadline, .. } | LinkState::Handshake { deadline, .. } => {
                Some(*deadline)
            }
            LinkState::Up { .. } => {
                if self.blocked {
                    None // waiting on writable readiness, no deadline
                } else {
                    self.pending.front().map(|(due, _)| *due)
                }
            }
        }
    }

    /// Handles a readiness delivery for this link's socket.
    pub(crate) fn on_event(&mut self, ev: Event, now: Instant, poller: &Poller) {
        // Oneshot delivery disarmed the registration.
        self.armed = Some((false, false));
        match std::mem::replace(&mut self.state, LinkState::Down) {
            LinkState::Down => {}
            LinkState::Connecting { stream, deadline } => {
                if ev.writable {
                    match stream.take_error() {
                        Ok(None) => {
                            // Connected: send the hello, then await the ack.
                            self.state = LinkState::Handshake {
                                stream,
                                sent: 0,
                                ack: [0; 8],
                                got: 0,
                                deadline: now + ACK_TIMEOUT,
                            };
                            self.advance_handshake(now, poller);
                        }
                        Ok(Some(_)) | Err(_) => {
                            // Refused/unreachable: route through the normal
                            // teardown so the poller registration is gone
                            // before the fd closes (the poll backend keeps
                            // registrations keyed by raw fd).
                            self.state = LinkState::Connecting { stream, deadline };
                            self.retire_connection(poller, now);
                        }
                    }
                } else {
                    self.state = LinkState::Connecting { stream, deadline };
                }
            }
            LinkState::Handshake { stream, sent, ack, got, deadline } => {
                self.state = LinkState::Handshake { stream, sent, ack, got, deadline };
                self.advance_handshake(now, poller);
            }
            LinkState::Up { stream } => {
                if ev.readable {
                    // The only bytes a peer ever sends on our outbound
                    // socket is the handshake ack; anything later means
                    // EOF/reset (or protocol garbage we treat the same).
                    let mut probe = [0u8; 512];
                    match stream_read(&stream, &mut probe) {
                        ReadStep::Closed | ReadStep::Data => {
                            self.state = LinkState::Up { stream };
                            self.retire_connection(poller, now);
                            self.sync_interest(poller);
                            return;
                        }
                        ReadStep::Blocked => {}
                    }
                }
                self.blocked = false;
                self.state = LinkState::Up { stream };
                self.pump(now, poller);
            }
        }
        self.sync_interest(poller);
    }

    /// Starts a non-blocking dial.
    fn start_dial(&mut self, now: Instant, poller: &Poller) {
        debug_assert!(matches!(self.state, LinkState::Down));
        match polling::os::connect_stream(&self.cfg.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if poller.add(&stream, Event::writable(self.key)).is_ok() {
                    self.armed = Some((false, true));
                    self.state = LinkState::Connecting { stream, deadline: now + DIAL_TIMEOUT };
                } else {
                    self.backoff_retry(now);
                }
            }
            Err(_) => self.backoff_retry(now),
        }
    }

    /// Writes hello bytes / reads ack bytes as far as the socket allows;
    /// completes the handshake when the full ack is in.
    fn advance_handshake(&mut self, now: Instant, poller: &Poller) {
        let LinkState::Handshake { stream, sent, ack, got, deadline } = &mut self.state else {
            return;
        };
        let mut hello = [0u8; 10];
        hello[..2].copy_from_slice(&self.cfg.me.0.to_be_bytes());
        hello[2..].copy_from_slice(&self.cfg.my_incarnation.to_be_bytes());
        while *sent < hello.len() {
            match (&*stream).write(&hello[*sent..]) {
                Ok(0) => return self.retire_connection(poller, now),
                Ok(k) => *sent += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return self.retire_connection(poller, now),
            }
        }
        while *got < ack.len() {
            match (&*stream).read(&mut ack[*got..]) {
                Ok(0) => return self.retire_connection(poller, now),
                Ok(k) => *got += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return self.retire_connection(poller, now),
            }
        }
        let _ = deadline;
        let peer_inc = u64::from_be_bytes(*ack);
        if self.connected_once {
            self.cfg.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.connected_once = true;
        // Resume is gated on the handshake: if the peer restarted since
        // these frames were queued, they address a dead incarnation — drop
        // them instead of replaying pre-crash traffic into the peer's
        // restored state (it pulls what it needs via catch-up).
        if self.peer_incarnation.is_some_and(|prev| peer_inc > prev) {
            self.cfg
                .metrics
                .frames_dropped_stale
                .fetch_add(self.pending.len() as u64, Ordering::Relaxed);
            self.pending.clear();
        }
        self.peer_incarnation = Some(peer_inc);
        self.backoff = BACKOFF_MIN;
        self.cursor = 0;
        self.blocked = false;
        let LinkState::Handshake { stream, .. } =
            std::mem::replace(&mut self.state, LinkState::Down)
        else {
            unreachable!("matched above");
        };
        self.state = LinkState::Up { stream };
        self.pump(now, poller);
    }

    /// Writes every due frame the socket will take; frames are retired as
    /// their last byte is accepted by the kernel (the same guarantee the
    /// old supervisor's confirmed `flush` gave on its buffered writer).
    fn pump(&mut self, now: Instant, poller: &Poller) {
        let LinkState::Up { stream } = &self.state else { return };
        while let Some((due, frame)) = self.pending.front() {
            // A frame mid-write must finish regardless of due times; an
            // unstarted frame waits for its conditioner-stamped due time.
            if self.cursor == 0 && *due > now {
                break;
            }
            match (&*stream).write(&frame[self.cursor..]) {
                Ok(0) => return self.retire_connection(poller, now),
                Ok(k) => {
                    self.cursor += k;
                    self.cfg.metrics.note_sent(k as u64, peer_of_key(self.key));
                    if self.cursor == frame.len() {
                        self.pending.pop_front();
                        self.cursor = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.blocked = true;
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return self.retire_connection(poller, now),
            }
        }
        self.blocked = false;
    }

    /// Drops the current connection (if any) and schedules a backed-off
    /// redial; unretired frames stay queued for the next connection.
    fn retire_connection(&mut self, poller: &Poller, now: Instant) {
        if self.cursor > 0 {
            // The frame the break interrupted will be rewritten in full.
            self.cursor = 0;
            self.cfg.metrics.frames_resent.fetch_add(1, Ordering::Relaxed);
        }
        self.teardown(poller);
        self.backoff_retry(now);
    }

    /// Tears the socket down without touching the backoff (cut flags and
    /// partition windows redial eagerly once clear).
    fn teardown(&mut self, poller: &Poller) {
        match std::mem::replace(&mut self.state, LinkState::Down) {
            LinkState::Down => {}
            LinkState::Connecting { stream, .. }
            | LinkState::Handshake { stream, .. }
            | LinkState::Up { stream } => {
                let _ = poller.delete(&stream);
                let _ = stream.shutdown(Shutdown::Both);
                self.armed = None;
                if self.cursor > 0 {
                    self.cursor = 0;
                    self.cfg.metrics.frames_resent.fetch_add(1, Ordering::Relaxed);
                }
                self.blocked = false;
            }
        }
    }

    /// Schedules the next dial with capped exponential backoff plus up to
    /// +50% uniform jitter, so simultaneous link deaths (peer restart,
    /// healed partition, cluster-wide cut) spread their redials instead of
    /// stampeding the listener in lockstep.
    fn backoff_retry(&mut self, now: Instant) {
        debug_assert!(matches!(self.state, LinkState::Down), "torn down before backoff");
        let jitter_us = self.rng.random_range(0..=self.backoff.as_micros() as u64 / 2);
        self.next_dial = now + self.backoff + Duration::from_micros(jitter_us);
        self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
    }

    /// The interest this link's state wants armed right now.
    fn desired_interest(&self) -> Option<(bool, bool)> {
        match &self.state {
            LinkState::Down => None,
            LinkState::Connecting { .. } => Some((false, true)),
            LinkState::Handshake { sent, .. } => {
                if *sent < 10 {
                    Some((false, true))
                } else {
                    Some((true, false))
                }
            }
            // Readable always (EOF/reset detection); writable only while a
            // write is actually blocked — the pump writes opportunistically
            // without waiting for readiness.
            LinkState::Up { .. } => Some((true, self.blocked)),
        }
    }

    /// Re-arms the poller registration if the desired interest differs
    /// from what is armed (oneshot deliveries disarm; state changes and
    /// new blocked writes re-arm here).
    fn sync_interest(&mut self, poller: &Poller) {
        let desired = self.desired_interest();
        let (Some(want), Some(armed)) = (desired, self.armed) else { return };
        if want == armed {
            return;
        }
        let ev = Event { key: self.key, readable: want.0, writable: want.1 };
        let ok = match &self.state {
            LinkState::Connecting { stream, .. }
            | LinkState::Handshake { stream, .. }
            | LinkState::Up { stream } => poller.modify(stream, ev).is_ok(),
            LinkState::Down => true,
        };
        if ok {
            self.armed = Some(want);
        }
    }
}

/// Outcome of one non-blocking read attempt.
enum ReadStep {
    Data,
    Blocked,
    Closed,
}

fn stream_read(mut stream: &TcpStream, buf: &mut [u8]) -> ReadStep {
    loop {
        match stream.read(buf) {
            Ok(0) => return ReadStep::Closed,
            Ok(_) => return ReadStep::Data,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadStep::Blocked,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadStep::Closed,
        }
    }
}

/// Inverse of the reactor's key layout (`key = 1 + peer.index()`), used to
/// attribute per-peer byte counters.
fn peer_of_key(key: usize) -> NodeId {
    NodeId((key - 1) as u16)
}
