//! Link conditioning and fault injection for the TCP layer.
//!
//! The declarative scenario ([`tetrabft_sim::LinkPlan`]) is shared with
//! the simulator; this module is its wall-clock interpretation. Each
//! directed edge gets an [`EdgeConditioner`] that stamps outbound frames
//! with a due time (base delay + jitter), samples drops, and reports
//! scripted partition windows, all deterministically from a per-edge seed.
//! [`NetControl`] is the test/benchmark handle: aggregated link metrics
//! plus one-shot socket kills.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use tetrabft_sim::{EdgeSpec, LinkPlan, PartitionWindow};
use tetrabft_types::NodeId;

/// Aggregated counters of every supervised link of one cluster/node.
#[derive(Debug, Default)]
pub(crate) struct NetMetrics {
    pub reconnects: AtomicU64,
    pub frames_resent: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_shed: AtomicU64,
    pub frames_dropped_stale: AtomicU64,
    /// Deepest any link's send queue has ever been (reactor gauge).
    pub send_queue_hwm: AtomicU64,
    /// Reactor wakeups (one per poller wait that returned), cluster-wide.
    pub poll_wakeups: AtomicU64,
    /// Client-connection ingress (submissions over TCP, not peer traffic).
    pub client_bytes_in: AtomicU64,
    /// Per-peer socket traffic, indexed by [`NodeId`]: bytes received from
    /// that peer / bytes sent to it, summed over the whole cluster.
    pub per_peer: Vec<PeerCounters>,
}

/// One peer's byte counters (see [`NetMetrics::per_peer`]).
#[derive(Debug, Default)]
pub(crate) struct PeerCounters {
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
}

impl NetMetrics {
    pub(crate) fn new(n: usize) -> Self {
        NetMetrics {
            per_peer: std::iter::repeat_with(PeerCounters::default).take(n).collect(),
            ..NetMetrics::default()
        }
    }

    /// Records a send-queue depth observation, keeping the high-water mark.
    pub(crate) fn note_queue_depth(&self, depth: u64) {
        self.send_queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts `bytes` written to peer `to`.
    pub(crate) fn note_sent(&self, bytes: u64, to: NodeId) {
        if let Some(c) = self.per_peer.get(to.index()) {
            c.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Counts `bytes` read from peer `from` (`None` = a client connection).
    pub(crate) fn note_received(&self, bytes: u64, from: Option<NodeId>) {
        match from.and_then(|id| self.per_peer.get(id.index())) {
            Some(c) => c.bytes_in.fetch_add(bytes, Ordering::Relaxed),
            None => self.client_bytes_in.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    pub(crate) fn snapshot(&self) -> NetStats {
        let bytes_out = self.per_peer.iter().map(|c| c.bytes_out.load(Ordering::Relaxed)).sum();
        let peer_in: u64 = self.per_peer.iter().map(|c| c.bytes_in.load(Ordering::Relaxed)).sum();
        NetStats {
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_resent: self.frames_resent.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            frames_dropped_stale: self.frames_dropped_stale.load(Ordering::Relaxed),
            send_queue_hwm: self.send_queue_hwm.load(Ordering::Relaxed),
            poll_wakeups: self.poll_wakeups.load(Ordering::Relaxed),
            bytes_in: peer_in + self.client_bytes_in.load(Ordering::Relaxed),
            bytes_out,
        }
    }
}

/// A point-in-time snapshot of link-layer health.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections re-established after a drop (initial dials excluded).
    pub reconnects: u64,
    /// Frames rewritten because a connection broke before their flush was
    /// confirmed (delivery across reconnects is at-least-once).
    pub frames_resent: u64,
    /// Frames dropped by the link policy's loss rate.
    pub frames_dropped: u64,
    /// Frames shed because a link's bounded resend buffer overflowed (a
    /// slow, down, or severed link outlasting 4096 queued frames); a shed
    /// frame is lost like a policy drop and recovered via view change.
    pub frames_shed: u64,
    /// Buffered frames discarded because the handshake showed the peer
    /// restarted (its incarnation counter advanced): pre-crash frames
    /// addressed a state the peer no longer holds, and replaying them
    /// would resurrect a conversation the restart ended.
    pub frames_dropped_stale: u64,
    /// Reactor gauge: the deepest any link's send queue has ever been
    /// (frames conditioned and waiting for the socket). Compare against
    /// the 4096-frame buffer bound to see how close a run came to
    /// shedding.
    pub send_queue_hwm: u64,
    /// Reactor gauge: poller wakeups so far, summed over every node's
    /// reactor. Divide by wall-clock runtime for wakeups/s — the "how busy
    /// are the event loops" number.
    pub poll_wakeups: u64,
    /// Total bytes read off every socket (peer links and client
    /// submissions).
    pub bytes_in: u64,
    /// Total bytes written to every peer socket.
    pub bytes_out: u64,
}

/// One row of [`NetControl::peer_traffic`]: a peer and the bytes the
/// cluster's reactors have exchanged with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Which peer.
    pub peer: NodeId,
    /// Bytes read from this peer's inbound connections.
    pub bytes_in: u64,
    /// Bytes written to this peer over outbound links.
    pub bytes_out: u64,
}

/// Handle to a running cluster's link layer: aggregated [`NetStats`] and
/// one-shot fault injection.
///
/// Cutting a link kills the live sockets of both directions; the
/// supervisors immediately re-dial with capped exponential backoff,
/// re-handshake, and resend every frame whose flush was not confirmed, so
/// a cut delays buffered traffic rather than losing it (up to the bounded
/// per-link buffer — see [`NetStats::frames_shed`]).
#[derive(Debug, Clone)]
pub struct NetControl {
    metrics: Arc<NetMetrics>,
    cuts: Arc<HashMap<(u16, u16), Arc<AtomicBool>>>,
}

impl NetControl {
    pub(crate) fn new(
        metrics: Arc<NetMetrics>,
        cuts: Arc<HashMap<(u16, u16), Arc<AtomicBool>>>,
    ) -> Self {
        NetControl { metrics, cuts }
    }

    /// Current link-layer counters, aggregated over every edge.
    pub fn stats(&self) -> NetStats {
        self.metrics.snapshot()
    }

    /// Per-peer socket traffic: for each [`NodeId`], the bytes every
    /// reactor has read from that peer's connections and written to its
    /// links (cluster-wide sums; client-submission ingress is not
    /// attributed to any peer and only appears in [`NetStats::bytes_in`]).
    pub fn peer_traffic(&self) -> Vec<PeerTraffic> {
        self.metrics
            .per_peer
            .iter()
            .enumerate()
            .map(|(i, c)| PeerTraffic {
                peer: NodeId(i as u16),
                bytes_in: c.bytes_in.load(Ordering::Relaxed),
                bytes_out: c.bytes_out.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Kills the live sockets between `a` and `b` (both directions), once.
    /// The links re-establish on their own; buffered frames flush after
    /// the re-handshake.
    pub fn cut(&self, a: NodeId, b: NodeId) {
        for key in [(a.0, b.0), (b.0, a.0)] {
            if let Some(flag) = self.cuts.get(&key) {
                flag.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Everything the per-node runner needs to condition and supervise its
/// outbound links: the shared plan, the common epoch partition windows are
/// measured from, the metrics sink, and the cut flags (one per directed
/// edge, shared with [`NetControl`]).
#[derive(Debug, Clone)]
pub(crate) struct LinkSetup {
    pub plan: Arc<LinkPlan>,
    pub epoch: Instant,
    pub metrics: Arc<NetMetrics>,
    pub cuts: Arc<HashMap<(u16, u16), Arc<AtomicBool>>>,
    pub seed: u64,
}

impl LinkSetup {
    /// A standalone node's setup: the given plan, fresh metrics, and cut
    /// flags for every directed edge of an `n`-node mesh.
    pub(crate) fn new(plan: LinkPlan, n: usize, seed: u64) -> Self {
        let mut cuts = HashMap::new();
        for a in 0..n as u16 {
            for b in 0..n as u16 {
                if a != b {
                    cuts.insert((a, b), Arc::new(AtomicBool::new(false)));
                }
            }
        }
        LinkSetup {
            plan: Arc::new(plan),
            epoch: Instant::now(),
            metrics: Arc::new(NetMetrics::new(n)),
            cuts: Arc::new(cuts),
            seed,
        }
    }

    pub(crate) fn cut_flag(&self, from: NodeId, to: NodeId) -> Arc<AtomicBool> {
        self.cuts.get(&(from.0, to.0)).cloned().unwrap_or_default()
    }

    pub(crate) fn control(&self) -> NetControl {
        NetControl::new(Arc::clone(&self.metrics), Arc::clone(&self.cuts))
    }

    pub(crate) fn conditioner(&self, from: NodeId, to: NodeId) -> EdgeConditioner {
        EdgeConditioner::new(&self.plan, from, to, self.epoch, self.seed)
    }
}

/// The wall-clock interpretation of one directed edge of a [`LinkPlan`]:
/// stamps frames with due times, samples drops, and translates partition
/// windows into absolute instants.
#[derive(Debug)]
pub(crate) struct EdgeConditioner {
    spec: EdgeSpec,
    /// Only the windows that sever this edge.
    windows: Vec<PartitionWindow>,
    epoch: Instant,
    rng: StdRng,
    /// Links are FIFO: a jittered frame never overtakes its predecessor.
    last_due: Instant,
}

impl EdgeConditioner {
    pub(crate) fn new(
        plan: &LinkPlan,
        from: NodeId,
        to: NodeId,
        epoch: Instant,
        seed: u64,
    ) -> Self {
        let windows = plan.partitions().iter().filter(|w| w.severs(from, to)).cloned().collect();
        // One deterministic stream per directed edge, derived from the
        // cluster seed — runs are reproducible modulo wall-clock jitter.
        let edge = (u64::from(from.0) << 16) | u64::from(to.0);
        let rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ edge);
        EdgeConditioner { spec: plan.edge_spec(from, to), windows, epoch, rng, last_due: epoch }
    }

    /// Admits one frame enqueued at `now`: `None` if the loss rate drops
    /// it, otherwise the instant it becomes writable (FIFO-clamped so
    /// jitter cannot reorder a TCP stream). A frame admitted inside a
    /// severed window counts its one-way delay from the heal, exactly as
    /// `LinkPlan::route_at` prices it for the simulator.
    pub(crate) fn admit(&mut self, now: Instant) -> Option<Instant> {
        let delay = self.spec.sample(&mut self.rng)?;
        let release = self.severed_until(now).unwrap_or(now);
        let due = (release + Duration::from_millis(delay)).max(self.last_due);
        self.last_due = due;
        Some(due)
    }

    /// If this edge is inside a scripted partition at `now`, the instant
    /// the (possibly chained) windows heal; `None` when connected.
    pub(crate) fn severed_until(&self, now: Instant) -> Option<Instant> {
        if self.windows.is_empty() {
            return None;
        }
        let at_ms = now.saturating_duration_since(self.epoch).as_millis() as u64;
        let heal = PartitionWindow::release_time(&self.windows, at_ms);
        (heal > at_ms).then(|| self.epoch + Duration::from_millis(heal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditioner_preserves_fifo_under_jitter() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(5).with_jitter(20));
        let mut c = plan_conditioner(&plan);
        let now = Instant::now();
        let mut prev = now;
        for _ in 0..100 {
            let due = c.admit(now).unwrap();
            assert!(due >= prev, "a later frame must not be due before an earlier one");
            prev = due;
        }
    }

    #[test]
    fn frames_admitted_while_severed_are_due_at_heal_plus_delay() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(30)).partition(PartitionWindow::isolate(
            0,
            500,
            [NodeId(0)],
        ));
        let mut c = plan_conditioner(&plan);
        let due = c.admit(c.epoch + Duration::from_millis(100)).unwrap();
        // Same pricing as LinkPlan::route_at: release at 500, then 30 ms.
        assert_eq!(due.duration_since(c.epoch), Duration::from_millis(530));
    }

    #[test]
    fn severed_window_translates_to_instants() {
        let plan = LinkPlan::uniform(EdgeSpec::IDEAL).partition(PartitionWindow::isolate(
            0,
            50,
            [NodeId(0)],
        ));
        let c = plan_conditioner(&plan);
        let heal = c.severed_until(c.epoch).expect("severed at the epoch");
        assert_eq!(heal.duration_since(c.epoch), Duration::from_millis(50));
        assert!(c.severed_until(c.epoch + Duration::from_millis(60)).is_none());
    }

    #[test]
    fn unrelated_edges_are_never_severed() {
        let plan = LinkPlan::uniform(EdgeSpec::IDEAL).partition(PartitionWindow::isolate(
            0,
            50,
            [NodeId(3)],
        ));
        let c = plan_conditioner(&plan); // edge 0 → 1
        assert!(c.severed_until(c.epoch).is_none());
    }

    #[test]
    fn lossy_edges_drop_deterministically_per_seed() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(1).with_drop(0.5));
        let count = |seed| {
            let mut c = EdgeConditioner::new(&plan, NodeId(0), NodeId(1), Instant::now(), seed);
            let now = Instant::now();
            (0..200).filter(|_| c.admit(now).is_none()).count()
        };
        assert_eq!(count(9), count(9));
        assert!((50..150).contains(&count(9)));
    }

    fn plan_conditioner(plan: &LinkPlan) -> EdgeConditioner {
        EdgeConditioner::new(plan, NodeId(0), NodeId(1), Instant::now(), 0)
    }
}
