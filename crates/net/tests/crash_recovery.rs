//! Crash-restart-rejoin coverage for durable nodes over real TCP: a node
//! killed without warning (`kill -9` semantics — no shutdown protocol, no
//! final flush) must restart from its on-disk state, re-handshake with a
//! bumped incarnation so peers fence its pre-crash frames, pull the blocks
//! it missed via catch-up, and end with a finalized chain byte-for-byte
//! identical to its peers' — while its live-slot WAL stays constant-size.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tetrabft::Params;
use tetrabft_multishot::{Finalized, MultiShotNode};
use tetrabft_net::{Cluster, ClusterBuilder, Topology};
use tetrabft_types::{Config, FsyncPolicy, NodeId};

fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tetrabft-crash-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_node(cfg: Config, params: Params, id: NodeId, base: &Path) -> MultiShotNode {
    MultiShotNode::durable(cfg, params, id, base.join(format!("n{}", id.0)))
        .expect("durable store opens")
}

/// Δ = 3 s keeps the 27 s view timeout far beyond any restart gap in these
/// tests: a killed node delays traffic, never triggers a view change.
fn params() -> Params {
    Params::new(3_000).with_max_block_txs(2).with_fsync(FsyncPolicy::Always)
}

/// Collects `(slot, hash)` pairs per watched node until each watched node
/// has finalized `slots` slots; asserts slot order per node.
fn collect_chains(
    cluster: &mut Cluster<Finalized>,
    watch: &[NodeId],
    slots: u64,
    mut on_output: impl FnMut(&mut Cluster<Finalized>, NodeId, &Finalized),
) -> Vec<Vec<(u64, u64)>> {
    let max = watch.iter().map(|w| w.index()).max().expect("watch set is non-empty");
    let mut chains: Vec<Vec<(u64, u64)>> = vec![Vec::new(); max + 1];
    while watch.iter().any(|w| (chains[w.index()].len() as u64) < slots) {
        let (node, fin) =
            cluster.next_output_timeout(Duration::from_secs(60)).expect("finalize within 60s");
        if watch.contains(&node) && fin.slot.0 <= slots {
            chains[node.index()].push((fin.slot.0, fin.hash.0));
        }
        on_output(cluster, node, &fin);
    }
    for w in watch {
        for (i, (slot, _)) in chains[w.index()].iter().enumerate() {
            assert_eq!(*slot, i as u64 + 1, "{w}: finalization must be in slot order");
        }
    }
    chains
}

#[test]
fn sigkilled_node_restarts_from_disk_and_finalizes_the_identical_chain() {
    let base = temp_base("rejoin");
    let cfg = Config::new(4).unwrap();
    let victim = NodeId(1);
    let (mut cluster, _net) = ClusterBuilder::new(4)
        .spawn(|id| {
            let mut node = durable_node(cfg, params(), id, &base);
            for t in 0..6 {
                node.submit_tx(format!("n{id}-t{t}").into_bytes()).unwrap();
            }
            node
        })
        .expect("cluster spawns");

    // Kill the victim once real traffic proves the links are up, give its
    // threads time to wind down (a real `kill -9` frees everything at
    // once; in-process we must not reopen the store under a dying writer),
    // then restart it from its own directory.
    let mut killed = false;
    let mut restored_at = None;
    let chains = collect_chains(&mut cluster, &[NodeId(0), victim], 10, |cluster, node, fin| {
        if !killed && node == NodeId(0) && fin.slot.0 >= 2 {
            killed = true;
            cluster.kill(victim);
            std::thread::sleep(Duration::from_millis(400));
            let node = durable_node(cfg, params(), victim, &base);
            assert!(node.finalized_slot().0 >= 1, "the tip survives on disk");
            restored_at = Some(node.finalized_slot().0);
            cluster.restart_node(victim, node).expect("victim rebinds its own port");
        }
    });
    assert!(killed, "the fault must actually be injected");
    let restored_at = restored_at.expect("restart happened");

    // The victim's output stream (pre-crash outputs plus post-restart
    // catch-up and live finalizations) is the same chain node 0 saw.
    assert_eq!(chains[victim.index()], chains[0], "rejoined chain must match");
    assert!(
        restored_at < 10,
        "the victim must have been behind at restart (restored at {restored_at}), \
         so slots {}..=10 prove catch-up worked",
        restored_at + 1
    );

    // Byte-for-byte: stop everything, then compare the on-disk chain logs.
    // Any node's log must be a prefix of the longest one — identical bytes,
    // not merely identical hashes.
    drop(cluster);
    std::thread::sleep(Duration::from_millis(300));
    let logs: Vec<Vec<u8>> = (0..4)
        .map(|i| fs::read(base.join(format!("n{i}")).join("chain.wal")).expect("chain log"))
        .collect();
    let longest = logs.iter().map(Vec::len).max().unwrap();
    for (i, log) in logs.iter().enumerate() {
        assert!(!log.is_empty(), "node {i} persisted no blocks");
        let reference = logs.iter().find(|l| l.len() == longest).unwrap();
        assert_eq!(
            &log[..],
            &reference[..log.len()],
            "node {i}'s chain log must be a byte-for-byte prefix of the longest log"
        );
    }
    // The paper's storage claim, crash-real: the chain log grew with the
    // run, the live-slot WAL stayed bounded by a constant.
    for i in 0..4 {
        let votes = fs::metadata(base.join(format!("n{i}")).join("votes.wal")).unwrap().len();
        assert!(votes < 64 * 1024, "node {i}: live-slot WAL must stay bounded, got {votes}");
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn flapping_restarts_drop_stale_frames_and_still_converge() {
    let base = temp_base("flap");
    let cfg = Config::new(4).unwrap();
    let victim = NodeId(2);
    let (mut cluster, net) = ClusterBuilder::new(4)
        .spawn(|id| {
            let mut node = durable_node(cfg, params(), id, &base);
            for t in 0..8 {
                node.submit_tx(format!("n{id}-t{t}").into_bytes()).unwrap();
            }
            node
        })
        .expect("cluster spawns");

    // Two quick kill/restart cycles. While the victim is down its peers
    // keep voting, so their supervisors buffer frames for it; the restart
    // handshake then shows a bumped incarnation and those pre-crash frames
    // must be dropped, not replayed into the restored state.
    let mut flaps = 0;
    let chains = collect_chains(&mut cluster, &[NodeId(0), victim], 8, |cluster, node, fin| {
        if node == NodeId(0) && ((fin.slot.0 == 2 && flaps == 0) || (fin.slot.0 == 5 && flaps == 1))
        {
            flaps += 1;
            cluster.kill(victim);
            std::thread::sleep(Duration::from_millis(900));
            let node = durable_node(cfg, params(), victim, &base);
            cluster.restart_node(victim, node).expect("victim rebinds its own port");
        }
    });
    assert_eq!(flaps, 2, "both restarts must be injected");
    assert_eq!(chains[victim.index()], chains[0], "chains agree across flapping restarts");
    let stats = net.stats();
    assert!(
        stats.frames_dropped_stale > 0,
        "frames buffered across a restart must be fenced by the incarnation handshake: {stats:?}"
    );
    assert!(stats.reconnects > 0, "the victim's links must have re-established: {stats:?}");
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn released_port_rebinds_within_the_retry_window_but_fails_fast_while_held() {
    let (mut listeners, topo) = Topology::bind_ephemeral(1).expect("reserve a port");
    let listener = listeners.remove(0);
    // Held: the fast path must fail immediately (typed), and the retry
    // path must fail once its window closes rather than hang.
    assert!(topo.bind(NodeId(0)).is_err(), "fast bind fails while the port is held");
    assert!(
        topo.bind_retry(NodeId(0), Duration::from_millis(120)).is_err(),
        "retry gives up once the window closes"
    );
    // Released mid-window: exactly the restart race — the old accept loop
    // lets go a beat after the new node starts binding.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(listener);
    });
    let rebound = topo.bind_retry(NodeId(0), Duration::from_secs(5)).expect("rebind succeeds");
    assert_eq!(rebound.local_addr().unwrap(), topo.addr(NodeId(0)), "same port reacquired");
    release.join().unwrap();
}
