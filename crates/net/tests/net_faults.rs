//! Fault-injection tests for the supervised TCP layer: killed sockets
//! must reconnect and flush their buffers, scripted partitions must heal,
//! lossy links must be survivable, and explicit topologies must work —
//! all without ever diverging from an unfaulted run.

use std::time::{Duration, Instant};

use tetrabft::{Params, TetraNode};
use tetrabft_multishot::MultiShotNode;
use tetrabft_net::{ClusterBuilder, EdgeSpec, LinkPlan, NetError, PartitionWindow, Topology};
use tetrabft_types::{Config, NodeId, Value};

/// Runs a 4-node multishot cluster with deterministic preloaded traffic
/// and returns node 0's finalized chain over the first `slots` slots.
/// When `cut` is set, the sockets of two links are killed mid-run.
fn multishot_chain(cut: bool, slots: u64) -> Vec<(u64, u64)> {
    let cfg = Config::new(4).unwrap();
    // Δ = 3 s ⇒ a 27 s view timeout: socket kills delay messages by a few
    // backoff rounds but never trigger a view change, so block packing is
    // a pure function of the preloaded mempools and the chain must come
    // out identical with and without faults.
    let params = Params::new(3_000).with_max_block_txs(2);
    let (mut cluster, net) = ClusterBuilder::new(4)
        .spawn(|id| {
            let mut node = MultiShotNode::new(cfg, params, id);
            for t in 0..6 {
                node.submit_tx(format!("n{id}-t{t}").into_bytes()).unwrap();
            }
            node
        })
        .expect("cluster spawns");

    let mut chain = Vec::new();
    let mut injected = false;
    while chain.len() < slots as usize {
        let (node, fin) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("finalize within 30s");
        if node != NodeId(0) {
            continue;
        }
        if fin.slot.0 <= slots {
            chain.push((fin.slot.0, fin.hash.0));
        }
        // Kill live sockets once real traffic has proven the links are up.
        if cut && !injected && fin.slot.0 >= 2 {
            injected = true;
            net.cut(NodeId(1), NodeId(2));
            net.cut(NodeId(0), NodeId(3));
        }
    }
    if cut {
        let stats = net.stats();
        assert!(
            stats.reconnects >= 4,
            "all four killed directions must re-establish, got {stats:?}"
        );
        assert_eq!(stats.frames_shed, 0, "nothing may be shed on a healthy run: {stats:?}");
    }
    chain
}

#[test]
fn killed_sockets_reconnect_and_the_chain_matches_an_unfaulted_run() {
    let unfaulted = multishot_chain(false, 10);
    let faulted = multishot_chain(true, 10);
    assert_eq!(
        faulted, unfaulted,
        "buffered frames must flush after reconnect: same chain, same order"
    );
}

#[test]
fn scripted_partition_heals_and_the_cluster_decides() {
    let cfg = Config::new(4).unwrap();
    // Node 0 (the view-0 leader) is severed from everyone for the first
    // 400 ms: no quorum can form, so no decision can exist before the
    // heal. Δ = 3 s keeps the view timeout (27 s) far away — the decision
    // arriving right after the heal is the responsiveness claim in
    // miniature.
    let plan = LinkPlan::uniform(EdgeSpec::delay(1)).partition(PartitionWindow::isolate(
        0,
        400,
        [NodeId(0)],
    ));
    let started = Instant::now();
    let (mut cluster, _net) = ClusterBuilder::new(4)
        .plan(plan)
        .spawn(|id| {
            TetraNode::new(cfg, Params::new(3_000), id, Value::from_u64(u64::from(id.0) + 1))
        })
        .expect("cluster spawns");

    let mut decisions = Vec::new();
    for _ in 0..4 {
        let (_, value) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("decide within 30s");
        decisions.push(value);
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(350),
        "no quorum exists before the heal at 400 ms, yet decided after {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(20),
        "the decision must follow the heal, not the 27 s view timeout ({elapsed:?})"
    );
    assert!(
        decisions.iter().all(|v| *v == Value::from_u64(1)),
        "leader 0's value after the heal: {decisions:?}"
    );
}

#[test]
fn lossy_links_drop_frames_without_blocking_agreement() {
    let cfg = Config::new(4).unwrap();
    // Only the 2↔3 edge is lossy; quorums avoiding it keep the cluster at
    // network speed while the drop counter proves frames really died.
    let plan = LinkPlan::uniform(EdgeSpec::delay(1)).link(
        NodeId(2),
        NodeId(3),
        EdgeSpec::delay(1).with_drop(0.5),
    );
    let (mut cluster, net) = ClusterBuilder::new(4)
        .plan(plan)
        .spawn(|id| TetraNode::new(cfg, Params::new(500), id, Value::from_u64(u64::from(id.0) + 1)))
        .expect("cluster spawns");

    let mut decisions = Vec::new();
    for _ in 0..4 {
        let (_, value) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("decide within 30s");
        decisions.push(value);
    }
    let first = decisions[0];
    assert!(decisions.iter().all(|v| *v == first), "agreement despite loss: {decisions:?}");
    assert!(net.stats().frames_dropped > 0, "the lossy edge must actually drop");
}

#[test]
fn injected_wan_delay_governs_commit_latency() {
    let cfg = Config::new(4).unwrap();
    // 25 ms per hop and a 9Δ = 27 s timeout: the good case needs 5 message
    // delays, so a decision before ~125 ms would mean the conditioning is
    // not applied, and one near the timeout would mean responsiveness is
    // lost.
    let started = Instant::now();
    let (mut cluster, _net) = ClusterBuilder::new(4)
        .plan(LinkPlan::uniform(EdgeSpec::delay(25)))
        .spawn(|id| {
            TetraNode::new(cfg, Params::new(3_000), id, Value::from_u64(u64::from(id.0) + 1))
        })
        .expect("cluster spawns");
    let (_, value) =
        cluster.next_output_timeout(Duration::from_secs(30)).expect("decide within 30s");
    let elapsed = started.elapsed();
    assert_eq!(value, Value::from_u64(1));
    assert!(
        elapsed >= Duration::from_millis(100),
        "5 conditioned hops cannot complete in {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "commit must track the injected delay, not the view timeout ({elapsed:?})"
    );
}

#[test]
fn explicit_topology_spawns_a_cluster_on_declared_addresses() {
    let cfg = Config::new(4).unwrap();
    // Reserve four OS-assigned ports, then declare them as an explicit
    // topology (what a real deployment would put in its config). The tiny
    // reserve-to-rebind window can race another process, so retry.
    let mut last_err: Option<NetError> = None;
    for _ in 0..3 {
        let (listeners, topology) = Topology::bind_ephemeral(4).expect("reserve ports");
        let spec = topology.to_string();
        drop(listeners);
        let declared: Topology = spec.parse().expect("topology survives serialization");
        match ClusterBuilder::new(0).topology(declared).spawn(|id| {
            TetraNode::new(cfg, Params::new(500), id, Value::from_u64(u64::from(id.0) + 1))
        }) {
            Ok((mut cluster, _net)) => {
                assert_eq!(cluster.len(), 4, "node count comes from the topology");
                let (_, value) = cluster
                    .next_output_timeout(Duration::from_secs(30))
                    .expect("decide within 30s");
                assert_eq!(value, Value::from_u64(1));
                return;
            }
            Err(e) => last_err = Some(e),
        }
    }
    panic!("could not bind the declared topology: {last_err:?}");
}
