//! End-to-end tests over real TCP sockets: the same state machines the
//! simulator verifies must decide on a live localhost cluster.

use std::time::Duration;

use tetrabft::{Params, TetraNode};
use tetrabft_multishot::MultiShotNode;
use tetrabft_net::Cluster;
use tetrabft_types::{Config, Value};

#[test]
fn four_node_tcp_cluster_decides() {
    let cfg = Config::new(4).unwrap();
    let mut cluster = Cluster::spawn(4, |id| {
        TetraNode::new(cfg, Params::new(500), id, Value::from_u64(id.0 as u64 + 1))
    })
    .expect("cluster spawns");

    let mut decisions = Vec::new();
    for _ in 0..4 {
        let (node, value) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("decide within 30s");
        decisions.push((node, value));
    }
    let first = decisions[0].1;
    assert!(decisions.iter().all(|(_, v)| *v == first), "agreement over TCP: {decisions:?}");
    // Round-robin leader of view 0 is node 0, whose input is 1.
    assert_eq!(first, Value::from_u64(1));
}

#[test]
fn multishot_tcp_cluster_finalizes_blocks() {
    let cfg = Config::new(4).unwrap();
    let mut cluster = Cluster::spawn(4, |id| {
        let mut node = MultiShotNode::new(cfg, Params::new(500), id);
        node.submit_tx(format!("tx-from-{id}").into_bytes()).unwrap();
        node
    })
    .expect("cluster spawns");

    // Collect until every node reports its first three finalized slots.
    let mut per_node: std::collections::HashMap<u16, Vec<(u64, u64)>> = Default::default();
    while per_node.len() < 4 || per_node.values().any(|c| c.len() < 3) {
        let (node, fin) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("finalize within 30s");
        per_node.entry(node.0).or_default().push((fin.slot.0, fin.hash.0));
    }
    // Chains must agree on the common prefix.
    let reference = per_node[&0].clone();
    for chain in per_node.values() {
        let common = chain.len().min(reference.len());
        assert_eq!(&chain[..common], &reference[..common], "prefix consistency over TCP");
    }
}

#[test]
fn runtime_submissions_reach_the_chain_over_tcp() {
    // Client-submit is the third engine input class: a tx handed to the
    // running cluster through SubmitHandles (not pre-queued at build time)
    // must land in the finalized chain.
    let cfg = Config::new(4).unwrap();
    let (mut cluster, submitters) =
        Cluster::spawn_submitting(4, |id| MultiShotNode::new(cfg, Params::new(300), id))
            .expect("cluster spawns");
    let tx = b"live-client-tx".to_vec();
    for handle in &submitters {
        handle.submit(tx.clone()).expect("cluster is running");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        assert!(std::time::Instant::now() < deadline, "tx must finalize within 30s");
        let Some((_, fin)) = cluster.next_output_timeout(Duration::from_secs(30)) else {
            continue;
        };
        if fin.block.txs.contains(&tx) {
            break;
        }
    }
}

#[test]
fn sharded_tcp_cluster_merges_into_one_global_stream() {
    use tetrabft_multishot::{Finalized, FinalizedMerge, ShardSpec};
    use tetrabft_net::ShardedCluster;
    use tetrabft_types::NodeId;

    let k = 2;
    let cfg = Config::new(4).unwrap();
    let mut cluster: ShardedCluster<Finalized> = ShardedCluster::spawn(k, 4, |shard, id| {
        let mut node = MultiShotNode::new(cfg, Params::new(500), id);
        node.submit_tx(format!("s{shard}-{id}").into_bytes()).unwrap();
        node
    })
    .expect("sharded cluster spawns");

    // Merge node 0's streams from both shards into the global chain until
    // six consecutive global slots have finalized.
    let mut merge = FinalizedMerge::new(ShardSpec::new(k));
    let mut global = Vec::new();
    while global.len() < 6 {
        let (shard, node, fin) =
            cluster.next_output_timeout(Duration::from_secs(30)).expect("finalize within 30s");
        if node == NodeId(0) {
            merge.push(shard, fin);
            global.extend(merge.by_ref());
        }
    }
    for (i, g) in global.iter().enumerate() {
        assert_eq!(g.global_slot, i as u64 + 1, "global stream has no gaps");
        assert_eq!(g.shard, (i) % k, "round-robin slot ownership");
    }
}
