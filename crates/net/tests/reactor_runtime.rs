//! Reactor-runtime contracts the thread-per-connection design could never
//! offer: a fixed two-thread budget per node regardless of cluster size,
//! and client submissions served over plain TCP connections (the hello-id
//! `0xFFFF` path) instead of per-client threads or in-process handles.
//!
//! Kept in its own integration-test binary: thread counting is process
//! global, and sharing a process with unrelated concurrently-running
//! tests would make the census meaningless.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tetrabft::{Params, TetraNode};
use tetrabft_multishot::{MultiShotNode, TxId};
use tetrabft_net::{Cluster, ClusterBuilder, CLIENT_HELLO_ID};
use tetrabft_types::{Config, NodeId, Value};
use tetrabft_wire::frame::encode_frame;

/// Live threads of this process, per the kernel.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("procfs").count()
}

#[test]
fn reactor_runtime_is_two_threads_per_node_and_serves_tcp_clients() {
    let n = 4;
    let before = thread_count();

    // --- Thread budget on a plain (non-serving) cluster. -----------------
    let cfg = Config::new(n).unwrap();
    let mut cluster =
        Cluster::spawn(n, |id| TetraNode::new(cfg, Params::new(500), id, Value::from_u64(7)))
            .expect("cluster spawns");
    for _ in 0..n {
        cluster.next_output_timeout(Duration::from_secs(30)).expect("decides");
    }
    // Consensus has run end to end, so every node's I/O is fully up; the
    // runtime must be at its steady state: reactor + engine loop per node,
    // nothing per connection (a 4-node mesh has 12 directed links and 12
    // inbound connections — the old runtime would hold 30+ threads here).
    let during = thread_count();
    assert!(
        during <= before + 2 * n,
        "fixed thread pool: expected at most {} threads ({} baseline + 2 per node), found {}",
        before + 2 * n,
        before,
        during
    );
    drop(cluster);

    // --- TCP client submissions against a serving multishot cluster. -----
    let ((mut cluster, _handles), _net) = ClusterBuilder::new(n)
        .spawn_serving(|id| MultiShotNode::new(cfg, Params::new(500), id))
        .expect("serving cluster spawns");

    // Dial node 0 as a TCP client: 10-byte hello (client id + zero
    // incarnation), read the 8-byte ack, then stream framed transactions.
    let addr = cluster.topology().addr(NodeId(0));
    let mut client = TcpStream::connect(addr).expect("client dials");
    let mut hello = [0u8; 10];
    hello[..2].copy_from_slice(&CLIENT_HELLO_ID.to_be_bytes());
    client.write_all(&hello).expect("hello");
    let mut ack = [0u8; 8];
    client.read_exact(&mut ack).expect("ack");

    let payloads: Vec<Vec<u8>> =
        (0..3).map(|i| format!("tcp-client-tx-{i}").into_bytes()).collect();
    for payload in &payloads {
        let frame = encode_frame(payload).expect("frame");
        client.write_all(&frame).expect("submit");
    }

    // Every submitted transaction must be finalized, identified by the
    // same TxId digest the client can compute locally.
    let mut wanted: std::collections::HashSet<TxId> =
        payloads.iter().map(|p| TxId::of(p)).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !wanted.is_empty() {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        let (_, fin) = cluster
            .next_output_timeout(remaining)
            .expect("finalizations keep arriving while client txs are pending");
        for tx in fin.block.txs.iter() {
            wanted.remove(&TxId::of(tx));
        }
    }
}
