//! Greedy scenario shrinking.
//!
//! Given a violating [`Scenario`], repeatedly tries simplifications — drop a
//! whole faulty node, drop one attack from a composition, truncate a
//! selective-silence target list, drop a partition window, halve the horizon
//! — keeping each change only when the *same oracle class* still fails.
//! Runs to a fixpoint or until the evaluation budget is spent. Every
//! candidate evaluation is one deterministic sim run, so the result is a
//! pure function of the input scenario and budget.

use crate::scenario::{Attack, Scenario, Verdict};

/// Verdict classes compared during shrinking (detail strings may change as
/// the scenario shrinks; the class must not).
fn class(v: &Verdict) -> &'static str {
    v.class()
}

/// Shrinks `scenario` while its verdict class is preserved.
///
/// `budget` caps the number of candidate evaluations (sim runs). A scenario
/// whose verdict is [`Verdict::Ok`] is returned unchanged.
pub fn shrink(scenario: &Scenario, budget: usize) -> Scenario {
    let target = class(&scenario.run().verdict);
    if target == "ok" {
        return scenario.clone();
    }
    let mut best = scenario.clone();
    let mut evals = 0usize;

    let still_fails = |cand: &Scenario, evals: &mut usize| -> bool {
        if *evals >= budget {
            return false;
        }
        *evals += 1;
        class(&cand.run().verdict) == target
    };

    loop {
        let mut improved = false;

        // 1. Drop whole faulty nodes, last first.
        let mut i = best.faults.len();
        while i > 0 {
            i -= 1;
            let mut cand = best.clone();
            cand.faults.remove(i);
            if still_fails(&cand, &mut evals) {
                best = cand;
                improved = true;
            }
        }

        // 2. Drop individual attacks from each composition. Note an emptied
        //    attack list is a *crash* fault, itself a simplification.
        for fi in 0..best.faults.len() {
            let mut ai = best.faults[fi].attacks.len();
            while ai > 0 {
                ai -= 1;
                let mut cand = best.clone();
                cand.faults[fi].attacks.remove(ai);
                if still_fails(&cand, &mut evals) {
                    best = cand;
                    improved = true;
                }
            }
        }

        // 3. Halve selective-silence target lists.
        for fi in 0..best.faults.len() {
            for ai in 0..best.faults[fi].attacks.len() {
                let Attack::SilenceToward(targets) = &best.faults[fi].attacks[ai] else {
                    continue;
                };
                if targets.len() < 2 {
                    continue;
                }
                let mut cand = best.clone();
                let keep = targets.len() / 2;
                if let Attack::SilenceToward(t) = &mut cand.faults[fi].attacks[ai] {
                    t.truncate(keep);
                }
                if still_fails(&cand, &mut evals) {
                    best = cand;
                    improved = true;
                }
            }
        }

        // 4. Drop partition windows, last first.
        let mut pi = best.plan.partitions().len();
        while pi > 0 {
            pi -= 1;
            let cand = Scenario { plan: best.plan.without_partition(pi), ..best.clone() };
            if still_fails(&cand, &mut evals) {
                best = cand;
                improved = true;
            }
        }

        // 5. Halve the horizon, but never below ten view timeouts.
        let floor = best.delta_ms.saturating_mul(90).max(100);
        let half = best.horizon_ms / 2;
        if half >= floor {
            let cand = Scenario { horizon_ms: half, ..best.clone() };
            if still_fails(&cand, &mut evals) {
                best = cand;
                improved = true;
            }
        }

        if !improved || evals >= budget {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultSpec, Mode};
    use tetrabft_types::NodeId;

    /// Over-budget equivocation (n = 4, two Byzantine where f = 1) violates
    /// safety; shrinking must keep the violation while removing the inert
    /// crash fault riding along.
    #[test]
    fn shrink_preserves_class_and_drops_dead_weight() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 0x5eed_0001,
            horizon_ms: 4_000,
            mode: Mode::Single,
            faults: vec![
                FaultSpec {
                    node: NodeId(0),
                    attacks: vec![
                        Attack::Equivocate,
                        Attack::SilenceToward(vec![NodeId(2), NodeId(3)]),
                    ],
                },
                FaultSpec { node: NodeId(1), attacks: vec![Attack::Equivocate] },
            ],
            plan: "default(delay=2,jitter=1)".parse().unwrap(),
        };
        let before = scn.run();
        if !before.verdict.is_violation() {
            // Not every seed splits the honest pair; the shrinker contract
            // only applies to violating inputs, which it must return as-is.
            let same = shrink(&scn, 16);
            assert_eq!(same, scn);
            return;
        }
        let small = shrink(&scn, 64);
        let after = small.run();
        assert_eq!(after.verdict.class(), before.verdict.class());
        assert!(small.faults.len() <= scn.faults.len(), "shrinking must never grow the fault set");
        assert!(small.horizon_ms <= scn.horizon_ms);
    }

    #[test]
    fn ok_scenarios_are_returned_unchanged() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 1,
            horizon_ms: 2_000,
            mode: Mode::Single,
            faults: vec![],
            plan: "default(delay=2,jitter=1)".parse().unwrap(),
        };
        assert_eq!(shrink(&scn, 8), scn);
    }
}
