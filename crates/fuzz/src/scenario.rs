//! Scenario description, execution, and oracles.
//!
//! A [`Scenario`] is a fully deterministic description of one hostile world:
//! node count, fault assignment with per-node [`Attack`] compositions, a
//! [`LinkPlan`], a seed, and a horizon. [`Scenario::run`] executes it in the
//! deterministic simulator and checks the safety and liveness oracles,
//! returning a [`RunReport`] with a [`Verdict`] and any accountability
//! [`Evidence`].

use std::fmt;

use tetrabft::{Message, Params, TetraNode};
use tetrabft_multishot::{FinalizedMerge, MsMessage, MultiShotNode, ShardSpec};
use tetrabft_sim::{
    ByzantineActor, FilteredNode, LinkPlan, Node, SilentNode, Sim, SimBuilder, Time, TraceEvent,
};
use tetrabft_types::{Config, Evidence, NodeId, Value};

use crate::behaviors;

/// One component of a faulty node's strategy composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attack {
    /// Split-brain equivocation: court even-numbered peers with one value
    /// and odd-numbered peers with a conflicting one, through the view-0
    /// proposal, all four vote phases, and per-recipient vote echoes.
    Equivocate,
    /// Drop all traffic toward the listed peers while talking normally to
    /// everyone else (selective silence / split-view).
    SilenceToward(Vec<NodeId>),
    /// Replay delivered votes shifted this many views into the future.
    SkewedReplay {
        /// How many views ahead the replayed votes claim to be.
        view_offset: u64,
    },
    /// Broadcast forged proposals/votes on a timer.
    ValueSpam {
        /// Milliseconds between spam bursts.
        period_ms: u64,
    },
}

impl Attack {
    /// Renders this attack as a Rust expression (for scripted scenarios).
    fn to_source(&self) -> String {
        match self {
            Attack::Equivocate => "Attack::Equivocate".into(),
            Attack::SilenceToward(targets) => {
                let ids: Vec<String> =
                    targets.iter().map(|id| format!("NodeId({})", id.0)).collect();
                format!("Attack::SilenceToward(vec![{}])", ids.join(", "))
            }
            Attack::SkewedReplay { view_offset } => {
                format!("Attack::SkewedReplay {{ view_offset: {view_offset} }}")
            }
            Attack::ValueSpam { period_ms } => {
                format!("Attack::ValueSpam {{ period_ms: {period_ms} }}")
            }
        }
    }
}

/// Fault assignment for one node: which node, and what it does.
///
/// An empty attack list means a crash fault (the node stays silent forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The faulty node.
    pub node: NodeId,
    /// Its strategy composition; empty = crashed.
    pub attacks: Vec<Attack>,
}

impl FaultSpec {
    fn to_source(&self) -> String {
        let attacks: Vec<String> = self.attacks.iter().map(Attack::to_source).collect();
        format!(
            "FaultSpec {{ node: NodeId({}), attacks: vec![{}] }}",
            self.node.0,
            attacks.join(", ")
        )
    }
}

/// Which protocol the scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Single-shot consensus ([`TetraNode`]); agreement oracle.
    Single,
    /// Multi-shot chain ([`MultiShotNode`]); chain-prefix oracle.
    Chain,
}

/// A deterministic adversarial world: `run()` is a pure function of this
/// struct.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of nodes (n ≥ 4 for a nontrivial fault budget).
    pub n: usize,
    /// Protocol Δ in milliseconds (view timeout is 9Δ).
    pub delta_ms: u64,
    /// Seed for the simulator's RNG (link sampling).
    pub seed: u64,
    /// Virtual run length in milliseconds; also the liveness bound.
    pub horizon_ms: u64,
    /// Single-shot or chain.
    pub mode: Mode,
    /// Faulty nodes and their strategies.
    pub faults: Vec<FaultSpec>,
    /// Network conditions (delays, jitter, loss, partition windows).
    pub plan: LinkPlan,
}

/// Outcome class of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All armed oracles held.
    Ok,
    /// A safety oracle failed (disagreement or chain divergence).
    Safety(String),
    /// The liveness oracle was armed and progress did not happen in bound.
    Liveness(String),
}

impl Verdict {
    /// True for safety or liveness violations.
    pub fn is_violation(&self) -> bool {
        !matches!(self, Verdict::Ok)
    }

    /// Coarse class label, ignoring the detail string.
    pub fn class(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Safety(_) => "safety",
            Verdict::Liveness(_) => "liveness",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Ok => write!(f, "ok"),
            Verdict::Safety(detail) => write!(f, "SAFETY: {detail}"),
            Verdict::Liveness(detail) => write!(f, "LIVENESS: {detail}"),
        }
    }
}

/// One honest vote observed on the wire, in compact form for the
/// model-checker cross-audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HonestVote {
    /// Voting node.
    pub node: u16,
    /// View voted in.
    pub view: u64,
    /// Phase 1..=4.
    pub phase: u8,
    /// Value voted for.
    pub value: u64,
}

/// Everything a single scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Oracle outcome.
    pub verdict: Verdict,
    /// Accountability evidence from the omniscient wire recorder.
    pub evidence: Vec<Evidence>,
    /// Total conflicting-claim count observed on the wire.
    pub equivocations: u64,
    /// Single-shot decisions per honest node (empty in chain mode).
    pub decided: Vec<(NodeId, Value)>,
    /// First vote per honest `(node, view, phase)` register, from the trace.
    pub honest_votes: Vec<HonestVote>,
    /// Finalized-block count per honest node (empty in single mode).
    pub finalized: Vec<(NodeId, u64)>,
}

impl Scenario {
    /// The system configuration for this scenario.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn cfg(&self) -> Config {
        Config::new(self.n).expect("scenario needs at least one node")
    }

    /// Fault budget `f = ⌊(n−1)/3⌋` the protocol tolerates at this `n`.
    pub fn tolerated(&self) -> usize {
        self.cfg().f()
    }

    /// True when more nodes are faulty than the protocol tolerates.
    pub fn is_over_budget(&self) -> bool {
        self.faults.len() > self.tolerated()
    }

    /// IDs of faulty nodes, ascending.
    pub fn faulty_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.faults.iter().map(|f| f.node).collect();
        ids.sort_unstable();
        ids
    }

    /// IDs of honest nodes, ascending.
    pub fn honest_ids(&self) -> Vec<NodeId> {
        let faulty = self.faulty_ids();
        (0..self.n as u16).map(NodeId).filter(|id| !faulty.contains(id)).collect()
    }

    /// Whether the liveness oracle is armed for this scenario.
    ///
    /// Liveness is only promised when the fault budget is respected and no
    /// message can be lost forever: partitions are fine (they heal), but
    /// probabilistic loss is not, since the sampled horizon cannot bound
    /// retransmission-free protocols under unbounded loss.
    pub fn liveness_armed(&self) -> bool {
        self.plan.is_lossless() && !self.is_over_budget()
    }

    /// A horizon that comfortably covers `views` view-changes after the last
    /// partition heals, given this plan's worst-case link delay.
    pub fn recommended_horizon(&self) -> u64 {
        let heal = self.plan.partitions().iter().map(|w| w.end_ms).max().unwrap_or(0);
        let delay = self.plan.max_delay_ms(self.n).max(1);
        let views = self.n as u64 + 3;
        heal + views * (9 * self.delta_ms + 4 * delay)
    }

    /// Runs the scenario deterministically and checks the oracles.
    pub fn run(&self) -> RunReport {
        match self.mode {
            Mode::Single => self.run_single(),
            Mode::Chain => self.run_chain(),
        }
    }

    fn fault_for(&self, id: NodeId) -> Option<&FaultSpec> {
        self.faults.iter().find(|f| f.node == id)
    }

    /// Union of `SilenceToward` targets across a composition.
    fn silence_set(spec: &FaultSpec) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = spec
            .attacks
            .iter()
            .filter_map(|a| match a {
                Attack::SilenceToward(targets) => Some(targets.iter().copied()),
                _ => None,
            })
            .flatten()
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    fn make_single(
        &self,
        cfg: Config,
        params: Params,
        id: NodeId,
    ) -> Box<dyn Node<Msg = Message, Output = Value>> {
        let Some(spec) = self.fault_for(id) else {
            let input = Value::from_u64(100 + u64::from(id.0));
            return Box::new(TetraNode::new(cfg, params, id, input));
        };
        if spec.attacks.is_empty() {
            return Box::new(SilentNode::new());
        }
        let silenced = Self::silence_set(spec);
        if spec.attacks.iter().all(|a| matches!(a, Attack::SilenceToward(_))) {
            let input = Value::from_u64(100 + u64::from(id.0));
            return Box::new(FilteredNode::new(TetraNode::new(cfg, params, id, input), silenced));
        }
        let mut actor: ByzantineActor<Message, Value> = ByzantineActor::new();
        let mut tick: Option<u64> = None;
        for attack in &spec.attacks {
            match attack {
                Attack::Equivocate => {
                    actor = actor.with_behavior(behaviors::equivocator(self.seed));
                }
                Attack::SilenceToward(_) => {}
                Attack::SkewedReplay { view_offset } => {
                    actor = actor.with_behavior(behaviors::skewed_replayer(*view_offset));
                }
                Attack::ValueSpam { period_ms } => {
                    let p = (*period_ms).max(1);
                    tick = Some(tick.map_or(p, |t| t.min(p)));
                    actor = actor.with_behavior(behaviors::value_spammer());
                }
            }
        }
        actor = actor.silence_toward(silenced);
        if let Some(every) = tick {
            actor = actor.tick_every(every);
        }
        Box::new(actor)
    }

    fn make_chain(
        &self,
        cfg: Config,
        params: Params,
        id: NodeId,
    ) -> Box<dyn Node<Msg = MsMessage, Output = tetrabft_multishot::Finalized>> {
        let Some(spec) = self.fault_for(id) else {
            return Box::new(MultiShotNode::new(cfg, params, id));
        };
        if spec.attacks.is_empty() {
            return Box::new(SilentNode::new());
        }
        let silenced = Self::silence_set(spec);
        if spec.attacks.iter().all(|a| matches!(a, Attack::SilenceToward(_))) {
            return Box::new(FilteredNode::new(MultiShotNode::new(cfg, params, id), silenced));
        }
        let mut actor: ByzantineActor<MsMessage, tetrabft_multishot::Finalized> =
            ByzantineActor::new();
        let mut tick: Option<u64> = None;
        for attack in &spec.attacks {
            match attack {
                Attack::Equivocate => {
                    actor = actor.with_behavior(behaviors::ms_equivocator(self.seed));
                }
                Attack::SilenceToward(_) => {}
                Attack::SkewedReplay { view_offset } => {
                    actor = actor.with_behavior(behaviors::ms_skewed_replayer(*view_offset));
                }
                Attack::ValueSpam { period_ms } => {
                    let p = (*period_ms).max(1);
                    tick = Some(tick.map_or(p, |t| t.min(p)));
                    actor = actor.with_behavior(behaviors::ms_value_spammer());
                }
            }
        }
        actor = actor.silence_toward(silenced);
        if let Some(every) = tick {
            actor = actor.tick_every(every);
        }
        Box::new(actor)
    }

    fn run_single(&self) -> RunReport {
        let cfg = self.cfg();
        let params = Params::new(self.delta_ms.max(1));
        let mut sim = SimBuilder::new(self.n)
            .seed(self.seed)
            .policy(self.plan.policy())
            .record_trace(true)
            .build_boxed(|id| self.make_single(cfg, params, id));
        sim.run_until(Time(self.horizon_ms));

        let honest = self.honest_ids();
        let mut decided: Vec<(NodeId, Value)> = Vec::new();
        for rec in sim.outputs() {
            if honest.contains(&rec.node) && !decided.iter().any(|(id, _)| *id == rec.node) {
                decided.push((rec.node, rec.output));
            }
        }
        let honest_votes = harvest_votes(&sim, &honest);
        let evidence = sim.metrics().evidence().to_vec();
        let equivocations = sim.metrics().equivocations();

        let mut verdict = Verdict::Ok;
        for (i, (node_a, val_a)) in decided.iter().enumerate() {
            for (node_b, val_b) in &decided[i + 1..] {
                if val_a != val_b {
                    verdict = Verdict::Safety(format!(
                        "agreement broken: node {node_a} decided {val_a} but node {node_b} decided {val_b}"
                    ));
                }
            }
        }
        if verdict == Verdict::Ok && self.liveness_armed() {
            let stuck: Vec<String> = honest
                .iter()
                .filter(|id| !decided.iter().any(|(d, _)| d == *id))
                .map(|id| id.to_string())
                .collect();
            if !stuck.is_empty() {
                verdict = Verdict::Liveness(format!(
                    "honest nodes [{}] undecided after {} ms",
                    stuck.join(", "),
                    self.horizon_ms
                ));
            }
        }

        RunReport { verdict, evidence, equivocations, decided, honest_votes, finalized: Vec::new() }
    }

    fn run_chain(&self) -> RunReport {
        let cfg = self.cfg();
        let params = Params::new(self.delta_ms.max(1));
        let mut sim = SimBuilder::new(self.n)
            .seed(self.seed)
            .policy(self.plan.policy())
            .build_boxed(|id| self.make_chain(cfg, params, id));
        sim.run_until(Time(self.horizon_ms));

        let honest = self.honest_ids();
        let mut chains: Vec<(NodeId, Vec<(u64, u64)>)> =
            honest.iter().map(|id| (*id, Vec::new())).collect();
        for rec in sim.outputs() {
            if let Some((_, chain)) = chains.iter_mut().find(|(id, _)| *id == rec.node) {
                chain.push((rec.output.slot.0, rec.output.hash.0));
            }
        }
        let evidence = sim.metrics().evidence().to_vec();
        let equivocations = sim.metrics().equivocations();

        let mut verdict = Verdict::Ok;
        'outer: for (i, (node_a, chain_a)) in chains.iter().enumerate() {
            for (node_b, chain_b) in &chains[i + 1..] {
                let common = chain_a.len().min(chain_b.len());
                for k in 0..common {
                    if chain_a[k] != chain_b[k] {
                        let (slot_a, hash_a) = chain_a[k];
                        let (slot_b, hash_b) = chain_b[k];
                        verdict = Verdict::Safety(format!(
                            "chain divergence at position {k}: node {node_a} finalized slot {slot_a} hash {hash_a:016x}, node {node_b} finalized slot {slot_b} hash {hash_b:016x}"
                        ));
                        break 'outer;
                    }
                }
            }
        }
        if verdict == Verdict::Ok {
            // Each honest stream must be contiguous from slot 1: feed it
            // through FinalizedMerge with a single shard and require every
            // pushed block to come back out.
            for (node, chain) in &chains {
                let mut merge = FinalizedMerge::new(ShardSpec::new(1));
                let mut out = 0usize;
                for (slot, hash) in chain {
                    merge.push(
                        0,
                        tetrabft_multishot::Finalized {
                            slot: tetrabft_types::Slot(*slot),
                            hash: tetrabft_multishot::BlockHash(*hash),
                            block: tetrabft_multishot::Block::new(
                                tetrabft_types::Slot(*slot),
                                tetrabft_multishot::GENESIS_HASH,
                                Vec::new(),
                            ),
                        },
                    );
                    out += merge.by_ref().count();
                }
                out += merge.by_ref().count();
                if out != chain.len() {
                    verdict = Verdict::Safety(format!(
                        "chain gap: node {node} finalized {} blocks but only {out} form a contiguous prefix",
                        chain.len()
                    ));
                    break;
                }
            }
        }
        if verdict == Verdict::Ok && self.liveness_armed() {
            let stuck: Vec<String> = chains
                .iter()
                .filter(|(_, chain)| chain.is_empty())
                .map(|(id, _)| id.to_string())
                .collect();
            if !stuck.is_empty() {
                verdict = Verdict::Liveness(format!(
                    "honest nodes [{}] finalized nothing after {} ms",
                    stuck.join(", "),
                    self.horizon_ms
                ));
            }
        }

        let finalized = chains.iter().map(|(id, c)| (*id, c.len() as u64)).collect();
        RunReport {
            verdict,
            evidence,
            equivocations,
            decided: Vec::new(),
            honest_votes: Vec::new(),
            finalized,
        }
    }

    /// Renders this scenario as a self-contained `#[test]` function that
    /// replays it and asserts the given verdict class — the artifact the
    /// shrinker emits for regression corpora.
    pub fn to_rust_source(&self, test_name: &str, expect: &Verdict) -> String {
        let faults: Vec<String> = self.faults.iter().map(FaultSpec::to_source).collect();
        let assertion = match expect {
            Verdict::Ok => {
                "assert_eq!(report.verdict, Verdict::Ok, \"expected a clean run, got {:?}\", report.verdict);".to_string()
            }
            Verdict::Safety(_) => {
                "assert!(matches!(report.verdict, Verdict::Safety(_)), \"expected a safety violation, got {:?}\", report.verdict);".to_string()
            }
            Verdict::Liveness(_) => {
                "assert!(matches!(report.verdict, Verdict::Liveness(_)), \"expected a liveness violation, got {:?}\", report.verdict);".to_string()
            }
        };
        format!(
            "/// Auto-generated by tetrabft-fuzz (seed {seed:#x}, shrunken).\n\
             #[test]\n\
             fn {test_name}() {{\n\
             \x20   use tetrabft_fuzz::{{Attack, FaultSpec, Mode, Scenario, Verdict}};\n\
             \x20   use tetrabft_types::NodeId;\n\
             \n\
             \x20   let scenario = Scenario {{\n\
             \x20       n: {n},\n\
             \x20       delta_ms: {delta},\n\
             \x20       seed: {seed:#x},\n\
             \x20       horizon_ms: {horizon},\n\
             \x20       mode: Mode::{mode:?},\n\
             \x20       faults: vec![{faults}],\n\
             \x20       plan: \"{plan}\".parse().unwrap(),\n\
             \x20   }};\n\
             \x20   let report = scenario.run();\n\
             \x20   {assertion}\n\
             }}\n",
            seed = self.seed,
            n = self.n,
            delta = self.delta_ms,
            horizon = self.horizon_ms,
            mode = self.mode,
            faults = faults.join(", "),
            plan = self.plan,
        )
    }
}

/// First vote per honest `(node, view, phase)` register seen on the wire.
fn harvest_votes(sim: &Sim<Message, Value>, honest: &[NodeId]) -> Vec<HonestVote> {
    let mut votes: Vec<HonestVote> = Vec::new();
    let Some(trace) = sim.trace() else {
        return votes;
    };
    for event in trace {
        let TraceEvent::Sent { from, msg, .. } = event else {
            continue;
        };
        if !honest.contains(from) {
            continue;
        }
        let Message::Vote { phase, view, value } = msg else {
            continue;
        };
        let vote =
            HonestVote { node: from.0, view: view.0, phase: phase.as_u8(), value: value.as_u64() };
        if !votes
            .iter()
            .any(|v| v.node == vote.node && v.view == vote.view && v.phase == vote.phase)
        {
            votes.push(vote);
        }
    }
    votes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_plan() -> LinkPlan {
        "default(delay=2,jitter=1)".parse().unwrap()
    }

    #[test]
    fn all_honest_single_shot_decides_one_value() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 7,
            horizon_ms: 2_000,
            mode: Mode::Single,
            faults: vec![],
            plan: quiet_plan(),
        };
        assert!(scn.liveness_armed());
        let report = scn.run();
        assert_eq!(report.verdict, Verdict::Ok, "{}", report.verdict);
        assert_eq!(report.decided.len(), 4);
        let first = report.decided[0].1;
        assert!(report.decided.iter().all(|(_, v)| *v == first));
        assert!(!report.honest_votes.is_empty());
    }

    #[test]
    fn crash_fault_within_budget_still_decides() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 11,
            horizon_ms: 3_000,
            mode: Mode::Single,
            faults: vec![FaultSpec { node: NodeId(3), attacks: vec![] }],
            plan: quiet_plan(),
        };
        let report = scn.run();
        assert_eq!(report.verdict, Verdict::Ok, "{}", report.verdict);
        assert_eq!(report.decided.len(), 3);
    }

    #[test]
    fn equivocator_within_budget_is_convicted_not_believed() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 13,
            horizon_ms: 3_000,
            mode: Mode::Single,
            faults: vec![FaultSpec { node: NodeId(0), attacks: vec![Attack::Equivocate] }],
            plan: quiet_plan(),
        };
        let report = scn.run();
        assert_eq!(report.verdict, Verdict::Ok, "{}", report.verdict);
        assert!(report.equivocations > 0, "equivocator should be seen on the wire");
        assert!(
            report.evidence.iter().any(|ev| ev.node == NodeId(0)),
            "evidence should name node 0: {:?}",
            report.evidence
        );
    }

    /// Two coordinated split-brain equivocators in a 4-node cluster (one
    /// past the f = 1 budget) hand each honest node a full quorum for a
    /// different value: the safety oracle must fire and the evidence must
    /// name the equivocators.
    #[test]
    fn over_budget_split_brain_breaks_safety_with_evidence() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 0xdead,
            horizon_ms: 3_000,
            mode: Mode::Single,
            faults: vec![
                FaultSpec { node: NodeId(0), attacks: vec![Attack::Equivocate] },
                FaultSpec { node: NodeId(1), attacks: vec![Attack::Equivocate] },
            ],
            plan: quiet_plan(),
        };
        assert!(scn.is_over_budget());
        let report = scn.run();
        assert!(
            matches!(report.verdict, Verdict::Safety(_)),
            "expected a safety split, got {:?} (decided: {:?})",
            report.verdict,
            report.decided
        );
        assert!(
            report.evidence.iter().any(|ev| ev.node == NodeId(0) || ev.node == NodeId(1)),
            "evidence must name an equivocator: {:?}",
            report.evidence
        );
        assert!(!report.honest_votes.is_empty(), "trace must carry honest votes for the audit");
    }

    #[test]
    fn chain_mode_finalizes_consistent_prefixes() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 17,
            horizon_ms: 1_500,
            mode: Mode::Chain,
            faults: vec![FaultSpec { node: NodeId(2), attacks: vec![] }],
            plan: quiet_plan(),
        };
        let report = scn.run();
        assert_eq!(report.verdict, Verdict::Ok, "{}", report.verdict);
        assert!(report.finalized.iter().all(|(_, count)| *count > 0));
    }

    #[test]
    fn scripted_source_round_trips_the_plan() {
        let scn = Scenario {
            n: 4,
            delta_ms: 3,
            seed: 0x2a,
            horizon_ms: 500,
            mode: Mode::Single,
            faults: vec![FaultSpec {
                node: NodeId(1),
                attacks: vec![Attack::Equivocate, Attack::SilenceToward(vec![NodeId(2)])],
            }],
            plan: "default(delay=2,jitter=1); part(10..40:0,1)".parse().unwrap(),
        };
        let src = scn.to_rust_source("regress_demo", &Verdict::Safety(String::new()));
        assert!(src.contains("fn regress_demo()"), "{src}");
        assert!(src.contains("Attack::SilenceToward(vec![NodeId(2)])"), "{src}");
        assert!(src.contains("part(10..40:0,1)"), "{src}");
        assert!(src.contains("matches!(report.verdict, Verdict::Safety(_))"), "{src}");
        // The embedded plan string must parse back to the same plan.
        let start = src.find("plan: \"").unwrap() + "plan: \"".len();
        let end = src[start..].find('"').unwrap() + start;
        assert_eq!(src[start..end].parse::<LinkPlan>().unwrap(), scn.plan);
    }
}
