//! Protocol-speaking Byzantine behaviors for the fuzzer.
//!
//! Each constructor returns a [`Behavior`] that a
//! [`ByzantineActor`](tetrabft_sim::ByzantineActor) composes with others.
//! Single-shot behaviors speak [`Message`], chain behaviors speak
//! [`MsMessage`]; the scenario builder picks the right family from
//! [`Mode`](crate::Mode).

use tetrabft::Message;
use tetrabft_multishot::{BlockHash, MsMessage};
use tetrabft_sim::{Behavior, BehaviorEnv, Dest, FnBehavior, Input};
use tetrabft_types::{Phase, Slot, Value, View};

/// Ensures the equivocation offset actually flips at least one bit.
fn nonzero(flip: u64) -> u64 {
    flip | 1
}

/// Split-brain equivocator: courts even-numbered peers with one value and
/// odd-numbered peers with a conflicting one.
///
/// On `Start` it poses as the view-0 leader, sending each side its own
/// proposal plus matching votes through all four phases — if this node
/// really is the view-0 leader and enough Byzantine peers run the same
/// strategy, each honest side can assemble a full quorum for its value.
/// Afterwards it echoes every delivered vote per-recipient: verbatim to
/// even peers, value-flipped to odd peers, feeding both sides in later
/// views too. The per-recipient conflict is exactly what the omniscient
/// wire recorder and honest registers convict as equivocation evidence.
pub fn equivocator(flip: u64) -> impl Behavior<Message> {
    let flip = nonzero(flip);
    let base = 0xe0_0001u64;
    FnBehavior::new(
        move |input: &Input<Message>, env: &BehaviorEnv, out: &mut Vec<(Dest, Message)>| match input
        {
            Input::Start => {
                for peer in 0..env.n as u16 {
                    if peer == env.me.0 {
                        continue;
                    }
                    let side = if peer % 2 == 0 { base } else { base ^ flip };
                    let value = Value::from_u64(side);
                    let dest = Dest::Node(tetrabft_types::NodeId(peer));
                    out.push((dest, Message::Proposal { view: View(0), value }));
                    for phase in Phase::ALL {
                        out.push((dest, Message::Vote { phase, view: View(0), value }));
                    }
                }
            }
            Input::Deliver { msg: Message::Vote { phase, view, value }, .. } => {
                for peer in 0..env.n as u16 {
                    if peer == env.me.0 {
                        continue;
                    }
                    let side =
                        if peer % 2 == 0 { *value } else { Value::from_u64(value.as_u64() ^ flip) };
                    out.push((
                        Dest::Node(tetrabft_types::NodeId(peer)),
                        Message::Vote { phase: *phase, view: *view, value: side },
                    ));
                }
            }
            _ => {}
        },
    )
}

/// Replays every delivered vote shifted `view_offset` views into the future,
/// probing the view-change and register bookkeeping with stale ballots that
/// claim to be fresh.
pub fn skewed_replayer(view_offset: u64) -> impl Behavior<Message> {
    FnBehavior::new(
        move |input: &Input<Message>, _env: &BehaviorEnv, out: &mut Vec<(Dest, Message)>| {
            if let Input::Deliver { msg: Message::Vote { phase, view, value }, .. } = input {
                out.push((
                    Dest::All,
                    Message::Vote {
                        phase: *phase,
                        view: View(view.0.saturating_add(view_offset)),
                        value: *value,
                    },
                ));
            }
        },
    )
}

/// On every adversary tick, broadcasts a rotating stream of forged proposals
/// and votes across low views. Because the rotation period of the value
/// (3) and the register (4 phases × 5 views) are coprime, the spammer also
/// self-equivocates over time, exercising the evidence path.
pub fn value_spammer() -> impl Behavior<Message> {
    let mut k: u64 = 0;
    FnBehavior::new(
        move |input: &Input<Message>, _env: &BehaviorEnv, out: &mut Vec<(Dest, Message)>| {
            if matches!(input, Input::Timer { .. }) {
                k += 1;
                out.push((
                    Dest::All,
                    Message::Vote {
                        phase: Phase::ALL[(k % 4) as usize],
                        view: View(k % 5),
                        value: Value::from_u64(0xbad_0000 + k % 3),
                    },
                ));
                out.push((
                    Dest::All,
                    Message::Proposal {
                        view: View(k % 5),
                        value: Value::from_u64(0xbad_1000 + k % 3),
                    },
                ));
            }
        },
    )
}

/// Chain-mode split-brain equivocator: votes the real block hash toward
/// even-numbered peers and a flipped hash toward odd-numbered peers, for
/// every proposal or vote it hears about, in the same `(slot, view)`
/// register.
pub fn ms_equivocator(flip: u64) -> impl Behavior<MsMessage> {
    let flip = nonzero(flip);
    FnBehavior::new(
        move |input: &Input<MsMessage>, env: &BehaviorEnv, out: &mut Vec<(Dest, MsMessage)>| {
            if let Input::Deliver { msg, .. } = input {
                let (slot, view, hash) = match msg {
                    MsMessage::Proposal { view, block } => (block.slot, *view, block.hash()),
                    MsMessage::Vote { slot, view, hash } => (*slot, *view, *hash),
                    _ => return,
                };
                for peer in 0..env.n as u16 {
                    if peer == env.me.0 {
                        continue;
                    }
                    let side = if peer % 2 == 0 { hash } else { BlockHash(hash.0 ^ flip) };
                    out.push((
                        Dest::Node(tetrabft_types::NodeId(peer)),
                        MsMessage::Vote { slot, view, hash: side },
                    ));
                }
            }
        },
    )
}

/// Chain-mode view skew: replays delivered votes `view_offset` views ahead.
pub fn ms_skewed_replayer(view_offset: u64) -> impl Behavior<MsMessage> {
    FnBehavior::new(
        move |input: &Input<MsMessage>, _env: &BehaviorEnv, out: &mut Vec<(Dest, MsMessage)>| {
            if let Input::Deliver { msg: MsMessage::Vote { slot, view, hash }, .. } = input {
                out.push((
                    Dest::All,
                    MsMessage::Vote {
                        slot: *slot,
                        view: View(view.0.saturating_add(view_offset)),
                        hash: *hash,
                    },
                ));
            }
        },
    )
}

/// Chain-mode spam: forged votes for rotating low slots with bogus hashes.
pub fn ms_value_spammer() -> impl Behavior<MsMessage> {
    let mut k: u64 = 0;
    FnBehavior::new(
        move |input: &Input<MsMessage>, _env: &BehaviorEnv, out: &mut Vec<(Dest, MsMessage)>| {
            if matches!(input, Input::Timer { .. }) {
                k += 1;
                out.push((
                    Dest::All,
                    MsMessage::Vote {
                        slot: Slot(1 + k % 4),
                        view: View(k % 3),
                        hash: BlockHash(0xbad_c0de + k % 3),
                    },
                ));
            }
        },
    )
}
