//! Seeded campaign runner.
//!
//! A campaign maps each seed to one [`Scenario`] via [`sample_scenario`]
//! (deterministically — same seed and config, same scenario, byte for
//! byte), runs it, and on violation shrinks it and cross-audits safety
//! hits against the bounded model. The whole [`CampaignReport`] is a pure
//! function of the [`CampaignCfg`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tetrabft_sim::LinkPlan;
use tetrabft_types::{Config, NodeId};

use crate::audit::cross_audit;
use crate::scenario::{Attack, FaultSpec, Mode, RunReport, Scenario};
use crate::shrink::shrink;

/// Seed-stream salt so campaign RNG streams don't collide with the sim's
/// own per-seed RNG (which is seeded with the raw scenario seed).
const SEED_SALT: u64 = 0x5eed_ca3b_a1a5_0001;

/// Provisional horizon used while sampling partitions; the real horizon is
/// recomputed from the sampled plan afterwards.
const PLAN_HORIZON_MS: u64 = 2_000;

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCfg {
    /// Seeds to run, in order.
    pub seeds: Vec<u64>,
    /// Smallest sampled cluster size (≥ 4 for a nonzero fault budget).
    pub n_min: usize,
    /// Largest sampled cluster size.
    pub n_max: usize,
    /// Cap on faulty nodes per scenario (further clamped to the protocol's
    /// `f` unless [`over_budget`](Self::over_budget) is set).
    pub max_faulty: usize,
    /// Allow sampling more faults than the protocol tolerates. Safety
    /// violations then become *expected findings* used to exercise the
    /// shrinker, the cross-audit, and the evidence pipeline.
    pub over_budget: bool,
    /// Percentage (0..=100) of seeds run in chain mode instead of
    /// single-shot.
    pub chain_percent: u32,
    /// Cap on sampled partition windows per plan.
    pub max_partitions: usize,
    /// Evaluation budget for shrinking each violation (0 disables).
    pub shrink_budget: usize,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        CampaignCfg {
            seeds: Vec::new(),
            n_min: 4,
            n_max: 6,
            max_faulty: 1,
            over_budget: false,
            chain_percent: 25,
            max_partitions: 2,
            shrink_budget: 48,
        }
    }
}

/// Everything one seed produced.
#[derive(Debug)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// The sampled scenario.
    pub scenario: Scenario,
    /// Oracle report from running it.
    pub report: RunReport,
    /// Shrunken scenario, when the run violated and shrinking was enabled.
    pub shrunk: Option<Scenario>,
    /// Whether the bounded model confirmed a safety hit (None: not audited).
    pub mc_confirmed: Option<bool>,
    /// Rendered model-checker counterexample trace, when one was produced.
    pub mc_trace: Option<String>,
}

/// Results of a whole campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// One outcome per seed, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl CampaignReport {
    /// Number of seeds whose oracles failed.
    pub fn violations(&self) -> usize {
        self.outcomes.iter().filter(|o| o.report.verdict.is_violation()).count()
    }

    /// Total accountability evidence records across all seeds.
    pub fn evidence_total(&self) -> usize {
        self.outcomes.iter().map(|o| o.report.evidence.len()).sum()
    }

    /// Deterministic human-readable summary (no timing, no ordering
    /// nondeterminism — safe to compare byte-for-byte across runs).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign: {} seeds, {} violations, {} evidence records",
            self.outcomes.len(),
            self.violations(),
            self.evidence_total(),
        );
        for o in &self.outcomes {
            let mode = match o.scenario.mode {
                Mode::Single => "single",
                Mode::Chain => "chain",
            };
            let _ = writeln!(
                s,
                "seed {:#018x}: n={} {} faults={} verdict={}",
                o.seed,
                o.scenario.n,
                mode,
                o.scenario.faults.len(),
                o.report.verdict,
            );
            for ev in &o.report.evidence {
                let _ = writeln!(s, "  evidence: {ev}");
            }
            if let Some(confirmed) = o.mc_confirmed {
                let _ = writeln!(
                    s,
                    "  mc cross-audit: {}",
                    if confirmed {
                        "CONFIRMED by bounded model"
                    } else {
                        "not reproduced in bounds"
                    }
                );
            }
            if let Some(shrunk) = &o.shrunk {
                let _ = writeln!(
                    s,
                    "  shrunk to: n={} faults={} partitions={} horizon={}ms",
                    shrunk.n,
                    shrunk.faults.len(),
                    shrunk.plan.partitions().len(),
                    shrunk.horizon_ms,
                );
            }
        }
        s
    }
}

/// Samples a random non-empty proper subset of `0..n` excluding `me`.
fn sample_targets(rng: &mut StdRng, n: usize, me: u16) -> Vec<NodeId> {
    let mut others: Vec<u16> = (0..n as u16).filter(|i| *i != me).collect();
    let take = rng.random_range(1..=others.len());
    for i in 0..take {
        let j = rng.random_range(i..others.len());
        others.swap(i, j);
    }
    let mut picked: Vec<NodeId> = others[..take].iter().copied().map(NodeId).collect();
    picked.sort_unstable();
    picked
}

/// Deterministically expands one seed into a full adversarial scenario.
pub fn sample_scenario(seed: u64, cfg: &CampaignCfg) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ SEED_SALT);
    let n_min = cfg.n_min.max(1);
    let n_max = cfg.n_max.max(n_min);
    let n = rng.random_range(n_min..=n_max);
    let sys = Config::new(n).expect("campaign n is nonzero");

    let mode = if rng.random_range(0..100u64) < u64::from(cfg.chain_percent.min(100)) {
        Mode::Chain
    } else {
        Mode::Single
    };

    let budget = if cfg.over_budget {
        cfg.max_faulty.min(n.saturating_sub(1))
    } else {
        cfg.max_faulty.min(sys.f())
    };
    let faulty_count = rng.random_range(0..=budget as u64) as usize;

    // Distinct faulty ids via a partial Fisher–Yates shuffle.
    let mut ids: Vec<u16> = (0..n as u16).collect();
    for i in 0..faulty_count {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    let mut faulty: Vec<u16> = ids[..faulty_count].to_vec();
    faulty.sort_unstable();

    let mut faults = Vec::with_capacity(faulty_count);
    for node in faulty {
        // 15%: plain crash. Otherwise compose 1–2 distinct attack kinds.
        let attacks = if rng.random_range(0..100u64) < 15 {
            Vec::new()
        } else {
            let mut kinds: Vec<u8> = vec![0, 1, 2, 3];
            let count = rng.random_range(1..=2u64) as usize;
            let mut attacks = Vec::with_capacity(count);
            for _ in 0..count {
                let pick = rng.random_range(0..kinds.len());
                attacks.push(match kinds.remove(pick) {
                    0 => Attack::Equivocate,
                    1 => Attack::SilenceToward(sample_targets(&mut rng, n, node)),
                    2 => Attack::SkewedReplay { view_offset: rng.random_range(1..=4) },
                    _ => Attack::ValueSpam { period_ms: rng.random_range(20..=80) },
                });
            }
            attacks
        };
        faults.push(FaultSpec { node: NodeId(node), attacks });
    }

    let plan = LinkPlan::sample(&mut rng, n, PLAN_HORIZON_MS, cfg.max_partitions);
    let delta_ms = plan.max_delay_ms(n).max(1);
    let mut scenario = Scenario { n, delta_ms, seed, horizon_ms: 0, mode, faults, plan };
    scenario.horizon_ms = scenario.recommended_horizon();
    scenario
}

/// Runs the whole campaign: sample, run, and on violation shrink and (for
/// safety hits in single-shot mode) cross-audit against the bounded model.
pub fn run_campaign(cfg: &CampaignCfg) -> CampaignReport {
    let mut outcomes = Vec::with_capacity(cfg.seeds.len());
    for &seed in &cfg.seeds {
        let scenario = sample_scenario(seed, cfg);
        let report = scenario.run();
        let (shrunk, mc_confirmed, mc_trace) = if report.verdict.is_violation() {
            let shrunk = (cfg.shrink_budget > 0).then(|| shrink(&scenario, cfg.shrink_budget));
            let audit = cross_audit(&scenario, &report);
            let mc_confirmed = audit.as_ref().map(|a| a.confirmed());
            let mc_trace = audit.as_ref().and_then(|a| a.trace());
            (shrunk, mc_confirmed, mc_trace)
        } else {
            (None, None, None)
        };
        outcomes.push(SeedOutcome { seed, scenario, report, shrunk, mc_confirmed, mc_trace });
    }
    CampaignReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_respects_budget() {
        let cfg = CampaignCfg::default();
        for seed in 0..32 {
            let a = sample_scenario(seed, &cfg);
            let b = sample_scenario(seed, &cfg);
            assert_eq!(a, b, "seed {seed} must sample identically twice");
            assert!(a.n >= 4 && a.n <= 6);
            assert!(a.faults.len() <= a.tolerated(), "seed {seed} over budget");
            assert!(a.delta_ms >= 1);
            assert!(a.horizon_ms >= 9 * a.delta_ms);
        }
    }

    #[test]
    fn over_budget_sampling_can_exceed_tolerance() {
        let cfg = CampaignCfg { max_faulty: 3, over_budget: true, ..CampaignCfg::default() };
        let mut seen_over = false;
        for seed in 0..64 {
            let scn = sample_scenario(seed, &cfg);
            assert!(scn.faults.len() < scn.n, "at least one honest node remains");
            seen_over |= scn.is_over_budget();
        }
        assert!(seen_over, "64 seeds should sample at least one over-budget scenario");
    }

    #[test]
    fn campaign_reports_are_reproducible() {
        let cfg = CampaignCfg { seeds: (0..6).collect(), ..CampaignCfg::default() };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.summary(), b.summary(), "summaries must match byte for byte");
        assert_eq!(a.outcomes.len(), 6);
    }
}
