//! Seeded adversary fuzzer for the TetraBFT reproduction.
//!
//! Each fuzz seed deterministically samples a whole hostile world:
//!
//! * a **Byzantine strategy composition** per faulty node — equivocation,
//!   selective silence toward a sampled subset, view-skewed vote replay,
//!   value spam, or random compositions thereof, assembled from the
//!   composable [`Behavior`](tetrabft_sim::Behavior)s in `tetrabft-sim`;
//! * a **random [`LinkPlan`](tetrabft_sim::LinkPlan)** — delay/jitter/loss
//!   matrices plus scripted partition windows;
//!
//! then runs the deterministic simulator against safety oracles (agreement
//! across honest nodes, chain-prefix consistency) and liveness oracles
//! (progress within a computed bound after the last partition heals).
//!
//! On a violation the [`shrink`] pass greedily reduces the scenario —
//! dropping faulty nodes, individual attacks, partition windows, and
//! halving the horizon — while the same oracle class still fails, and
//! [`Scenario::to_rust_source`] renders the minimum as a replayable
//! deterministic test. A safety hit is additionally cross-audited by
//! [`cross_audit`]: the honest nodes' votes are reconstructed from the sim
//! trace and fed to the model checker's `Explorer::with_initial`, replaying
//! the finding as an mc counterexample trace.
//!
//! Accountability rides along end to end: the sim's omniscient recorder and
//! the honest nodes' registers both emit typed
//! [`Evidence`](tetrabft_types::Evidence) records — "node 3 voted both v
//! and v′ in view 7" — surfaced in every [`RunReport`] and campaign
//! summary.
//!
//! # Examples
//!
//! A bounded fixed-seed campaign (what CI's `fuzz-smoke` job runs):
//!
//! ```
//! use tetrabft_fuzz::{run_campaign, CampaignCfg};
//!
//! let cfg = CampaignCfg { seeds: (0..4).collect(), ..CampaignCfg::default() };
//! let report = run_campaign(&cfg);
//! assert_eq!(report.outcomes.len(), 4);
//! assert_eq!(report.violations(), 0, "{}", report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod behaviors;
mod campaign;
mod scenario;
mod shrink;

pub use audit::{cross_audit, McAudit};
pub use campaign::{run_campaign, sample_scenario, CampaignCfg, CampaignReport, SeedOutcome};
pub use scenario::{Attack, FaultSpec, HonestVote, Mode, RunReport, Scenario, Verdict};
pub use shrink::shrink;
