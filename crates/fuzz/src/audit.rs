//! Model-checker cross-audit of safety findings.
//!
//! A safety violation found by the simulator is a concrete execution; the
//! bounded model in `tetrabft-mc` is an abstraction of the same voting
//! rules. [`cross_audit`] bridges them: it reconstructs the honest nodes'
//! vote registers from the sim trace, forges the equivalent bounded-model
//! [`State`] with [`State::from_votes`], and asks
//! [`Explorer::with_initial`] whether the abstraction also reaches (or
//! already exhibits) an agreement violation from that state — yielding an
//! independent counterexample trace for the report.

use tetrabft_mc::{Explorer, ModelCfg, Report, State};

use crate::scenario::{Mode, RunReport, Scenario, Verdict};

/// Bound on states explored per audit; audits are advisory, not exhaustive.
const AUDIT_MAX_STATES: usize = 200_000;

/// Result of replaying a sim-found safety violation in the bounded model.
#[derive(Debug)]
pub struct McAudit {
    /// The bounded-model configuration the sim run was mapped onto.
    pub cfg: ModelCfg,
    /// The explorer's report, including a counterexample trace when the
    /// abstraction confirms the violation.
    pub report: Report,
}

impl McAudit {
    /// True when the bounded model also reaches an agreement violation from
    /// the forged state.
    pub fn confirmed(&self) -> bool {
        self.report.violations > 0
    }

    /// Rendered counterexample trace, if the explorer produced one.
    pub fn trace(&self) -> Option<String> {
        self.report.counterexample.as_ref().map(|t| t.to_string())
    }
}

/// Maps a single-shot safety violation onto the bounded model and replays
/// it. Returns `None` when the run is not auditable (chain mode, no safety
/// violation, or the scenario falls outside the model's bounds).
pub fn cross_audit(scenario: &Scenario, run: &RunReport) -> Option<McAudit> {
    if scenario.mode != Mode::Single || !matches!(run.verdict, Verdict::Safety(_)) {
        return None;
    }
    let honest = scenario.honest_ids();
    if honest.is_empty() || honest.len() > 16 {
        return None;
    }
    // The model's quorum is honest_quorum() = nodes − 2·byzantine; clamp the
    // Byzantine count so that stays non-negative even absurdly over budget.
    let byzantine = scenario.faults.len().min(honest.len());
    let nodes = honest.len() + byzantine;

    // Value table: decided values first (so the conflicting pair is always
    // representable), then wire votes in trace order, capped at the model's
    // seven values.
    let mut values: Vec<u64> = Vec::new();
    let intern = |v: u64, values: &mut Vec<u64>| -> Option<u8> {
        if let Some(i) = values.iter().position(|x| *x == v) {
            return Some(i as u8);
        }
        if values.len() >= 7 {
            return None;
        }
        values.push(v);
        Some((values.len() - 1) as u8)
    };
    for (_, v) in &run.decided {
        intern(v.as_u64(), &mut values);
    }

    let mut votes: Vec<(usize, u8, u8, u8)> = Vec::new();
    let mut max_round: u8 = 0;
    for hv in &run.honest_votes {
        let Some(node) = honest.iter().position(|h| h.0 == hv.node) else {
            continue;
        };
        if hv.view >= tetrabft_mc::MAX_ROUNDS as u64 {
            continue;
        }
        let Some(value) = intern(hv.value, &mut values) else {
            continue;
        };
        let round = hv.view as u8;
        votes.push((node, round, hv.phase, value));
        max_round = max_round.max(round);
    }

    let cfg = ModelCfg {
        nodes,
        byzantine,
        values: (values.len() as u8).clamp(2, 7),
        rounds: (max_round + 1).clamp(1, tetrabft_mc::MAX_ROUNDS as u8),
    };
    let initial = State::from_votes(&cfg, &votes);
    let report = Explorer::new(cfg).trace(true).with_initial(initial).run(AUDIT_MAX_STATES);
    Some(McAudit { cfg, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Attack, FaultSpec, HonestVote};
    use tetrabft_types::NodeId;

    fn over_budget_scenario() -> Scenario {
        Scenario {
            n: 4,
            delta_ms: 3,
            seed: 0xad17,
            horizon_ms: 4_000,
            mode: Mode::Single,
            faults: vec![
                FaultSpec { node: NodeId(0), attacks: vec![Attack::Equivocate] },
                FaultSpec { node: NodeId(1), attacks: vec![Attack::Equivocate] },
            ],
            plan: "default(delay=2,jitter=1)".parse().unwrap(),
        }
    }

    #[test]
    fn non_safety_runs_are_not_audited() {
        let scn = over_budget_scenario();
        let ok = RunReport {
            verdict: Verdict::Ok,
            evidence: vec![],
            equivocations: 0,
            decided: vec![],
            honest_votes: vec![],
            finalized: vec![],
        };
        assert!(cross_audit(&scn, &ok).is_none());
    }

    #[test]
    fn forged_disagreement_is_confirmed_by_the_model() {
        // Two honest nodes, two Byzantine: model quorum is 4 − 2·2 = 0, so a
        // forged split vote must reproduce as a model violation too.
        let scn = over_budget_scenario();
        let run = RunReport {
            verdict: Verdict::Safety("forged".into()),
            evidence: vec![],
            equivocations: 2,
            decided: vec![
                (NodeId(2), tetrabft_types::Value::from_u64(0xa)),
                (NodeId(3), tetrabft_types::Value::from_u64(0xb)),
            ],
            honest_votes: vec![
                HonestVote { node: 2, view: 0, phase: 4, value: 0xa },
                HonestVote { node: 3, view: 0, phase: 4, value: 0xb },
            ],
            finalized: vec![],
        };
        let audit = cross_audit(&scn, &run).expect("auditable");
        assert_eq!(audit.cfg.byzantine, 2);
        assert!(audit.confirmed(), "model should confirm the forged split");
        assert!(audit.trace().is_some(), "confirmation should carry a trace");
    }
}
