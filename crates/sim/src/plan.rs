//! Declarative link conditioning shared by the simulator and the TCP
//! runtime.
//!
//! A [`LinkPlan`] describes a network scenario — per-edge one-way delay,
//! jitter, drop probability, and scripted partition windows — without
//! reference to any runtime. The simulator consumes it through
//! [`LinkPlan::policy`] (virtual-time ticks are milliseconds), the TCP
//! layer (`tetrabft-net`) applies the very same plan in its send path with
//! wall-clock milliseconds, so one scenario drives both runtimes and their
//! results can be compared directly.
//!
//! Partition semantics match what a supervised TCP link does: frames sent
//! while an edge is severed are *buffered* and released when the window
//! ends (the link reconnects and flushes), not silently lost. Loss is
//! modeled separately by the per-edge drop probability.

use std::collections::HashMap;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::Rng;

use tetrabft_engine::Time;
use tetrabft_types::NodeId;

use crate::policy::{LinkPolicy, Route};

/// Conditioning applied to one directed edge: a base one-way delay, a
/// uniform jitter on top, and an independent drop probability per message.
///
/// Times are milliseconds — the unit both the simulator (one tick = 1 ms)
/// and the TCP runtime (wall clock) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Base one-way delay in milliseconds.
    pub delay_ms: u64,
    /// Uniform extra delay in `0..=jitter_ms` milliseconds, sampled per
    /// message.
    pub jitter_ms: u64,
    /// Drop probability in parts per million (`1_000_000` = always drop).
    pub drop_ppm: u32,
}

impl EdgeSpec {
    /// A perfect link: zero delay, no jitter, no loss.
    pub const IDEAL: EdgeSpec = EdgeSpec { delay_ms: 0, jitter_ms: 0, drop_ppm: 0 };

    /// A fixed one-way delay with no jitter or loss.
    pub fn delay(delay_ms: u64) -> Self {
        EdgeSpec { delay_ms, jitter_ms: 0, drop_ppm: 0 }
    }

    /// Adds uniform jitter of up to `jitter_ms` milliseconds per message.
    pub fn with_jitter(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Sets the drop probability as a fraction in `0.0..=1.0`.
    pub fn with_drop(mut self, fraction: f64) -> Self {
        self.drop_ppm = (fraction.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        self
    }

    /// Samples one message: `None` if dropped, otherwise the total one-way
    /// delay (base + jitter) in milliseconds.
    pub fn sample(&self, rng: &mut StdRng) -> Option<u64> {
        if self.drop_ppm > 0 && rng.random_range(0..1_000_000u64) < u64::from(self.drop_ppm) {
            return None;
        }
        let jitter = if self.jitter_ms > 0 { rng.random_range(0..=self.jitter_ms) } else { 0 };
        Some(self.delay_ms + jitter)
    }

    /// Worst-case one-way delay (base + full jitter).
    pub fn max_delay_ms(&self) -> u64 {
        self.delay_ms + self.jitter_ms
    }
}

/// Parse error for [`EdgeSpec`], [`PartitionWindow`], and topology-style
/// plan fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    what: String,
}

impl PlanParseError {
    fn new(what: impl Into<String>) -> Self {
        PlanParseError { what: what.into() }
    }
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid link-plan fragment: {}", self.what)
    }
}

impl std::error::Error for PlanParseError {}

impl std::fmt::Display for EdgeSpec {
    /// Canonical form, re-parsable by [`EdgeSpec::from_str`]: zero fields
    /// are omitted, loss is printed as exact `drop_ppm` (the fractional
    /// `drop` key would lose precision), and [`EdgeSpec::IDEAL`] is the
    /// empty string.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        if self.delay_ms > 0 {
            write!(f, "delay={}", self.delay_ms)?;
            sep = ",";
        }
        if self.jitter_ms > 0 {
            write!(f, "{sep}jitter={}", self.jitter_ms)?;
            sep = ",";
        }
        if self.drop_ppm > 0 {
            write!(f, "{sep}drop_ppm={}", self.drop_ppm)?;
        }
        Ok(())
    }
}

impl FromStr for EdgeSpec {
    type Err = PlanParseError;

    /// Parses `"delay=30,jitter=5,drop=0.01"` (any subset of keys; `drop`
    /// is a fraction in `0..=1`, `drop_ppm` an exact parts-per-million
    /// integer).
    fn from_str(s: &str) -> Result<Self, PlanParseError> {
        let mut spec = EdgeSpec::IDEAL;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| PlanParseError::new(format!("expected key=value, got `{part}`")))?;
            match key.trim() {
                "delay" => {
                    spec.delay_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad delay `{value}`")))?;
                }
                "jitter" => {
                    spec.jitter_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad jitter `{value}`")))?;
                }
                "drop" => {
                    let frac: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad drop `{value}`")))?;
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(PlanParseError::new(format!(
                            "drop fraction `{value}` outside 0..=1"
                        )));
                    }
                    spec = spec.with_drop(frac);
                }
                "drop_ppm" => {
                    let ppm: u32 = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad drop_ppm `{value}`")))?;
                    if ppm > 1_000_000 {
                        return Err(PlanParseError::new(format!(
                            "drop_ppm `{value}` above 1000000"
                        )));
                    }
                    spec.drop_ppm = ppm;
                }
                other => {
                    return Err(PlanParseError::new(format!("unknown key `{other}`")));
                }
            }
        }
        Ok(spec)
    }
}

/// A scripted partition: during `start_ms..end_ms` every edge crossing the
/// boundary between `group` and the rest of the cluster is severed.
///
/// Severed traffic is buffered and released at the end of the window (the
/// TCP link closes, reconnects after heal, and flushes its buffer; the
/// simulator delivers at the heal time plus the edge delay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start, inclusive, in milliseconds since the run began.
    pub start_ms: u64,
    /// Window end, exclusive, in milliseconds since the run began.
    pub end_ms: u64,
    group: Vec<u16>,
}

impl PartitionWindow {
    /// Severs `group` from the rest of the cluster during
    /// `start_ms..end_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`start_ms >= end_ms`).
    pub fn isolate(start_ms: u64, end_ms: u64, group: impl IntoIterator<Item = NodeId>) -> Self {
        assert!(start_ms < end_ms, "partition window must be non-empty");
        let mut group: Vec<u16> = group.into_iter().map(|id| id.0).collect();
        group.sort_unstable();
        group.dedup();
        PartitionWindow { start_ms, end_ms, group }
    }

    /// Whether the edge `a`–`b` crosses this partition's boundary.
    pub fn severs(&self, a: NodeId, b: NodeId) -> bool {
        self.group.binary_search(&a.0).is_ok() != self.group.binary_search(&b.0).is_ok()
    }

    /// Whether `at_ms` falls inside the window.
    pub fn contains(&self, at_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&at_ms)
    }

    /// Earliest time at or after `at_ms` at which none of `windows` is
    /// active — when buffered traffic held by these windows is released.
    /// Chained or overlapping windows are walked through to the final heal.
    pub fn release_time(windows: &[PartitionWindow], at_ms: u64) -> u64 {
        let mut at = at_ms;
        loop {
            let Some(end) = windows.iter().filter(|w| w.contains(at)).map(|w| w.end_ms).max()
            else {
                return at;
            };
            at = end;
        }
    }
}

impl std::fmt::Display for PartitionWindow {
    /// Canonical `start..end:ids` form, re-parsable by
    /// [`PartitionWindow::from_str`] (the group is kept sorted, so the
    /// rendering is unique).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}:", self.start_ms, self.end_ms)?;
        let mut sep = "";
        for id in &self.group {
            write!(f, "{sep}{id}")?;
            sep = ",";
        }
        Ok(())
    }
}

impl FromStr for PartitionWindow {
    type Err = PlanParseError;

    /// Parses `"500..1500:0,3"` — isolate nodes 0 and 3 during
    /// milliseconds 500..1500.
    fn from_str(s: &str) -> Result<Self, PlanParseError> {
        let (range, group) = s
            .split_once(':')
            .ok_or_else(|| PlanParseError::new(format!("expected range:group, got `{s}`")))?;
        let (start, end) = range
            .split_once("..")
            .ok_or_else(|| PlanParseError::new(format!("expected start..end, got `{range}`")))?;
        let start: u64 = start
            .trim()
            .parse()
            .map_err(|_| PlanParseError::new(format!("bad start `{start}`")))?;
        let end: u64 =
            end.trim().parse().map_err(|_| PlanParseError::new(format!("bad end `{end}`")))?;
        if start >= end {
            return Err(PlanParseError::new(format!("empty window `{range}`")));
        }
        let mut ids = Vec::new();
        for id in group.split(',').map(str::trim).filter(|g| !g.is_empty()) {
            let id: u16 =
                id.parse().map_err(|_| PlanParseError::new(format!("bad node id `{id}`")))?;
            ids.push(NodeId(id));
        }
        if ids.is_empty() {
            return Err(PlanParseError::new("partition group is empty"));
        }
        Ok(PartitionWindow::isolate(start, end, ids))
    }
}

/// A whole-network conditioning scenario: a default [`EdgeSpec`], directed
/// per-edge overrides, and scripted [`PartitionWindow`]s.
///
/// # Examples
///
/// ```
/// use tetrabft_sim::{EdgeSpec, LinkPlan, PartitionWindow};
/// use tetrabft_types::NodeId;
///
/// // A 30 ms WAN with 3 ms jitter, one slow transatlantic edge, and a
/// // partition isolating node 0 for the first half second.
/// let plan = LinkPlan::uniform(EdgeSpec::delay(30).with_jitter(3))
///     .link(NodeId(0), NodeId(3), EdgeSpec::delay(80))
///     .partition(PartitionWindow::isolate(0, 500, [NodeId(0)]));
/// assert_eq!(plan.edge_spec(NodeId(0), NodeId(3)).delay_ms, 80);
/// assert_eq!(plan.edge_spec(NodeId(1), NodeId(2)).delay_ms, 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPlan {
    default: EdgeSpec,
    edges: HashMap<(u16, u16), EdgeSpec>,
    partitions: Vec<PartitionWindow>,
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan::ideal()
    }
}

impl LinkPlan {
    /// Perfect links everywhere, no partitions.
    pub fn ideal() -> Self {
        LinkPlan::uniform(EdgeSpec::IDEAL)
    }

    /// The same spec on every edge.
    pub fn uniform(spec: EdgeSpec) -> Self {
        LinkPlan { default: spec, edges: HashMap::new(), partitions: Vec::new() }
    }

    /// A LAN preset: 1 ms one-way delay, no jitter or loss.
    pub fn lan() -> Self {
        LinkPlan::uniform(EdgeSpec::delay(1))
    }

    /// A WAN preset: `one_way_ms` delay with 10% jitter.
    pub fn wan(one_way_ms: u64) -> Self {
        LinkPlan::uniform(EdgeSpec::delay(one_way_ms).with_jitter(one_way_ms / 10))
    }

    /// Per-edge delays from a square matrix: `delays[i][j]` is the one-way
    /// delay of edge `i → j` in milliseconds (the diagonal is ignored —
    /// loopback never touches the network).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(delays: &[Vec<u64>]) -> Self {
        let n = delays.len();
        let mut plan = LinkPlan::ideal();
        for (i, row) in delays.iter().enumerate() {
            assert_eq!(row.len(), n, "delay matrix must be square");
            for (j, &d) in row.iter().enumerate() {
                if i != j {
                    plan.edges.insert((i as u16, j as u16), EdgeSpec::delay(d));
                }
            }
        }
        plan
    }

    /// Overrides one directed edge.
    pub fn edge(mut self, from: NodeId, to: NodeId, spec: EdgeSpec) -> Self {
        self.edges.insert((from.0, to.0), spec);
        self
    }

    /// Overrides both directions between `a` and `b`.
    pub fn link(self, a: NodeId, b: NodeId, spec: EdgeSpec) -> Self {
        self.edge(a, b, spec).edge(b, a, spec)
    }

    /// Adds a scripted partition window.
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// The spec governing `from → to` (the directed override if present,
    /// else the default).
    pub fn edge_spec(&self, from: NodeId, to: NodeId) -> EdgeSpec {
        self.edges.get(&(from.0, to.0)).copied().unwrap_or(self.default)
    }

    /// The scripted partition windows.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// The same plan with partition window `idx` removed (unchanged when
    /// out of range) — the fuzzer's shrinker peels windows off one by one.
    pub fn without_partition(&self, idx: usize) -> LinkPlan {
        let mut plan = self.clone();
        if idx < plan.partitions.len() {
            plan.partitions.remove(idx);
        }
        plan
    }

    /// Worst-case one-way delay over all edges of an `n`-node cluster.
    pub fn max_delay_ms(&self, n: usize) -> u64 {
        let mut max = self.default.max_delay_ms();
        for ((from, to), spec) in &self.edges {
            if usize::from(*from) < n && usize::from(*to) < n {
                max = max.max(spec.max_delay_ms());
            }
        }
        max
    }

    /// Whether no edge of the plan ever drops a message. Liveness oracles
    /// are only armed on lossless plans: with loss the partial-synchrony
    /// model gives no delivery bound to hold the protocol to.
    pub fn is_lossless(&self) -> bool {
        self.default.drop_ppm == 0 && self.edges.values().all(|e| e.drop_ppm == 0)
    }

    /// Samples a random plan for an `n`-node cluster — the adversary
    /// fuzzer's network dimension. A pure function of the `rng` stream:
    ///
    /// * a base edge spec with 1–30 ms delay, up to 10 ms jitter, and (25%
    ///   of the time) up to 5% loss — delays are always ≥ 1 ms so virtual
    ///   time advances between distinct nodes even under message storms;
    /// * sparse directed overrides (≈15% of edges) with heavier delays;
    /// * up to `max_partitions` random [`PartitionWindow`]s, each fully
    ///   inside `horizon_ms` and isolating a random proper subset.
    pub fn sample(rng: &mut StdRng, n: usize, horizon_ms: u64, max_partitions: usize) -> LinkPlan {
        let mut base =
            EdgeSpec::delay(rng.random_range(1..=30)).with_jitter(rng.random_range(0..=10));
        if rng.random_range(0..100u32) < 25 {
            base.drop_ppm = rng.random_range(0..=50_000);
        }
        let mut plan = LinkPlan::uniform(base);
        for from in 0..n as u16 {
            for to in 0..n as u16 {
                if from != to && rng.random_range(0..100u32) < 15 {
                    let mut spec = EdgeSpec::delay(rng.random_range(1..=80))
                        .with_jitter(rng.random_range(0..=20));
                    if base.drop_ppm > 0 && rng.random_range(0..100u32) < 50 {
                        spec.drop_ppm = rng.random_range(0..=100_000);
                    }
                    plan = plan.edge(NodeId(from), NodeId(to), spec);
                }
            }
        }
        if n >= 2 && horizon_ms >= 8 {
            for _ in 0..max_partitions {
                if rng.random_range(0..100u32) < 40 {
                    continue;
                }
                let start = rng.random_range(0..horizon_ms / 2);
                let len = rng.random_range(1..=(horizon_ms / 4).max(1));
                // A random proper subset, drawn without replacement.
                let mut ids: Vec<u16> = (0..n as u16).collect();
                let group_size = rng.random_range(1..n);
                for i in 0..group_size {
                    let j = rng.random_range(i..ids.len());
                    ids.swap(i, j);
                }
                ids.truncate(group_size);
                plan = plan.partition(PartitionWindow::isolate(
                    start,
                    start + len,
                    ids.into_iter().map(NodeId),
                ));
            }
        }
        plan
    }

    /// When a message sent on `from → to` at `at_ms` is released from any
    /// severing partition windows (equal to `at_ms` when unsevered).
    pub fn release_time(&self, from: NodeId, to: NodeId, at_ms: u64) -> u64 {
        let mut at = at_ms;
        loop {
            let Some(end) = self
                .partitions
                .iter()
                .filter(|w| w.severs(from, to) && w.contains(at))
                .map(|w| w.end_ms)
                .max()
            else {
                return at;
            };
            at = end;
        }
    }

    /// Routes one message: `None` if dropped by the edge's loss rate,
    /// otherwise its absolute delivery time in milliseconds — partition
    /// release first (buffered links flush at heal), then the sampled
    /// one-way delay.
    pub fn route_at(&self, from: NodeId, to: NodeId, at_ms: u64, rng: &mut StdRng) -> Option<u64> {
        let delay = self.edge_spec(from, to).sample(rng)?;
        Some(self.release_time(from, to, at_ms) + delay)
    }

    /// The simulator-side view of this plan: a scripted [`LinkPolicy`]
    /// with one tick = one millisecond, exactly mirroring what the TCP
    /// layer's link conditioning does with the wall clock.
    pub fn policy(&self) -> LinkPolicy {
        let plan = self.clone();
        LinkPolicy::scripted(move |env, rng| {
            match plan.route_at(env.from, env.to, env.now.0, rng) {
                Some(at) => Route::DeliverAt(Time(at)),
                None => Route::Drop,
            }
        })
    }
}

impl std::fmt::Display for LinkPlan {
    /// Canonical scenario grammar, re-parsable by [`LinkPlan::from_str`]:
    /// `default(<spec>); edge(<from>-><to>,<spec>); part(<window>)` —
    /// edges sorted by `(from, to)` so the rendering is unique, ideal edge
    /// overrides printed without the spec.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "default({})", self.default)?;
        let mut edges: Vec<(&(u16, u16), &EdgeSpec)> = self.edges.iter().collect();
        edges.sort_by_key(|(key, _)| **key);
        for ((from, to), spec) in edges {
            if *spec == EdgeSpec::IDEAL {
                write!(f, "; edge({from}->{to})")?;
            } else {
                write!(f, "; edge({from}->{to},{spec})")?;
            }
        }
        for w in &self.partitions {
            write!(f, "; part({w})")?;
        }
        Ok(())
    }
}

impl FromStr for LinkPlan {
    type Err = PlanParseError;

    /// Parses the grammar printed by [`LinkPlan`]'s `Display`:
    /// `;`-separated `default(<spec>)`, `edge(<from>-><to>[,<spec>])`, and
    /// `part(<start>..<end>:<ids>)` segments, in any order.
    fn from_str(s: &str) -> Result<Self, PlanParseError> {
        let mut plan = LinkPlan::ideal();
        for seg in s.split(';').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, rest) = seg
                .split_once('(')
                .ok_or_else(|| PlanParseError::new(format!("expected name(...), got `{seg}`")))?;
            let body = rest
                .strip_suffix(')')
                .ok_or_else(|| PlanParseError::new(format!("missing `)` in `{seg}`")))?;
            match name.trim() {
                "default" => plan.default = body.parse()?,
                "edge" => {
                    let (edge, spec) = match body.split_once(',') {
                        Some((edge, spec)) => (edge, spec),
                        None => (body, ""),
                    };
                    let (from, to) = edge.split_once("->").ok_or_else(|| {
                        PlanParseError::new(format!("expected from->to, got `{edge}`"))
                    })?;
                    let from: u16 = from
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad node id `{from}`")))?;
                    let to: u16 = to
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad node id `{to}`")))?;
                    plan.edges.insert((from, to), spec.parse()?);
                }
                "part" => plan.partitions.push(body.parse()?),
                other => {
                    return Err(PlanParseError::new(format!("unknown plan segment `{other}`")));
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RouteEnv;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn edge_overrides_beat_the_default() {
        let plan =
            LinkPlan::uniform(EdgeSpec::delay(10)).link(NodeId(0), NodeId(1), EdgeSpec::delay(50));
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(1)).delay_ms, 50);
        assert_eq!(plan.edge_spec(NodeId(1), NodeId(0)).delay_ms, 50);
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(2)).delay_ms, 10);
        assert_eq!(plan.max_delay_ms(4), 50);
        assert_eq!(plan.max_delay_ms(1), 10, "override edges outside n are ignored");
    }

    #[test]
    fn matrix_plan_is_directed() {
        let plan = LinkPlan::from_matrix(&[vec![0, 5], vec![9, 0]]);
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(1)).delay_ms, 5);
        assert_eq!(plan.edge_spec(NodeId(1), NodeId(0)).delay_ms, 9);
    }

    #[test]
    fn partitions_buffer_and_release() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(3)).partition(PartitionWindow::isolate(
            100,
            200,
            [NodeId(0)],
        ));
        let mut r = rng();
        // Severed edge: released at heal + delay.
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 150, &mut r), Some(203));
        // Edge inside the majority side is untouched.
        assert_eq!(plan.route_at(NodeId(1), NodeId(2), 150, &mut r), Some(153));
        // Outside the window nothing is severed.
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 300, &mut r), Some(303));
    }

    #[test]
    fn chained_partitions_release_at_the_final_heal() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(1))
            .partition(PartitionWindow::isolate(0, 100, [NodeId(0)]))
            .partition(PartitionWindow::isolate(100, 250, [NodeId(0)]));
        assert_eq!(plan.release_time(NodeId(0), NodeId(1), 10), 250);
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 10, &mut rng()), Some(251));
    }

    #[test]
    fn drop_rate_is_roughly_honored_and_deterministic() {
        let spec = EdgeSpec::delay(1).with_drop(0.5);
        let sample = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..1000).filter(|_| spec.sample(&mut r).is_none()).count()
        };
        let dropped = sample(3);
        assert!((350..650).contains(&dropped), "≈half dropped, got {dropped}");
        assert_eq!(dropped, sample(3), "sampling is a pure function of the seed");
    }

    #[test]
    fn policy_mirrors_the_plan_in_virtual_time() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(30)).partition(PartitionWindow::isolate(
            0,
            600,
            [NodeId(0)],
        ));
        let mut policy = plan.policy();
        let mut r = rng();
        let env = |from, to, now| RouteEnv { from, to, now: Time(now), size: 8 };
        assert_eq!(
            policy.route(env(NodeId(0), NodeId(2), 5), &mut r),
            Route::DeliverAt(Time(630)),
            "severed traffic heals at the window end plus the edge delay"
        );
        assert_eq!(policy.route(env(NodeId(1), NodeId(2), 5), &mut r), Route::DeliverAt(Time(35)));
    }

    #[test]
    fn edge_spec_parses() {
        let spec: EdgeSpec = "delay=30, jitter=5, drop=0.25".parse().unwrap();
        assert_eq!(spec.delay_ms, 30);
        assert_eq!(spec.jitter_ms, 5);
        assert_eq!(spec.drop_ppm, 250_000);
        assert_eq!("".parse::<EdgeSpec>().unwrap(), EdgeSpec::IDEAL);
        assert!("delay=x".parse::<EdgeSpec>().is_err());
        assert!("speed=1".parse::<EdgeSpec>().is_err());
        assert!("drop=1.5".parse::<EdgeSpec>().is_err());
    }

    #[test]
    fn partition_window_parses() {
        let w: PartitionWindow = "500..1500:0,3".parse().unwrap();
        assert_eq!(w.start_ms, 500);
        assert_eq!(w.end_ms, 1500);
        assert!(w.severs(NodeId(0), NodeId(1)));
        assert!(w.severs(NodeId(3), NodeId(2)));
        assert!(!w.severs(NodeId(0), NodeId(3)), "both isolated: same side");
        assert!(!w.severs(NodeId(1), NodeId(2)));
        assert!("500..400:0".parse::<PartitionWindow>().is_err());
        assert!("0..9:".parse::<PartitionWindow>().is_err());
        assert!("0..9".parse::<PartitionWindow>().is_err());
    }

    #[test]
    fn plan_display_round_trips() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(30).with_jitter(3))
            .edge(NodeId(2), NodeId(1), EdgeSpec::delay(80))
            .edge(NodeId(0), NodeId(3), EdgeSpec::IDEAL)
            .partition(PartitionWindow::isolate(100, 500, [NodeId(0), NodeId(3)]))
            .partition(PartitionWindow::isolate(700, 900, [NodeId(1)]));
        let text = plan.to_string();
        assert_eq!(
            text,
            "default(delay=30,jitter=3); edge(0->3); edge(2->1,delay=80); \
             part(100..500:0,3); part(700..900:1)"
        );
        let parsed: LinkPlan = text.parse().unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_string(), text, "canonical form is a fixpoint");
        // drop_ppm survives exactly (the fractional `drop` key would not).
        let lossy = LinkPlan::uniform(EdgeSpec { delay_ms: 2, jitter_ms: 0, drop_ppm: 123_457 });
        assert_eq!(lossy.to_string().parse::<LinkPlan>().unwrap(), lossy);
        assert!(!lossy.is_lossless());
        assert!(plan.is_lossless());
    }

    #[test]
    fn plan_parse_rejects_malformed_segments() {
        assert!("bogus(1)".parse::<LinkPlan>().is_err());
        assert!("default(delay=3".parse::<LinkPlan>().is_err(), "missing paren");
        assert!("edge(0-1,delay=3)".parse::<LinkPlan>().is_err(), "bad arrow");
        assert!("edge(0->x)".parse::<LinkPlan>().is_err(), "bad id");
        assert!("part(9..5:0)".parse::<LinkPlan>().is_err(), "reversed window");
        assert!("default(drop_ppm=2000000)".parse::<LinkPlan>().is_err(), "ppm above 1e6");
        assert_eq!("".parse::<LinkPlan>().unwrap(), LinkPlan::ideal());
    }

    #[test]
    fn sampled_plans_are_deterministic_and_bounded() {
        let sample = |seed| LinkPlan::sample(&mut StdRng::seed_from_u64(seed), 5, 2_000, 3);
        let a = sample(42);
        assert_eq!(a, sample(42), "pure function of the seed");
        assert_ne!(a.to_string(), sample(43).to_string(), "different seeds differ");
        for seed in 0..50 {
            let plan = sample(seed);
            assert!(plan.to_string().parse::<LinkPlan>().unwrap() == plan, "round trips");
            for w in plan.partitions() {
                assert!(w.start_ms < w.end_ms && w.end_ms <= 2_000, "window inside horizon");
            }
            for from in 0..5u16 {
                for to in 0..5u16 {
                    if from != to {
                        assert!(plan.edge_spec(NodeId(from), NodeId(to)).delay_ms >= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn jitter_bounds_the_sampled_delay() {
        let spec = EdgeSpec::delay(10).with_jitter(4);
        let mut r = rng();
        for _ in 0..200 {
            let d = spec.sample(&mut r).unwrap();
            assert!((10..=14).contains(&d));
        }
        assert_eq!(spec.max_delay_ms(), 14);
    }
}
