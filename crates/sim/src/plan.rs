//! Declarative link conditioning shared by the simulator and the TCP
//! runtime.
//!
//! A [`LinkPlan`] describes a network scenario — per-edge one-way delay,
//! jitter, drop probability, and scripted partition windows — without
//! reference to any runtime. The simulator consumes it through
//! [`LinkPlan::policy`] (virtual-time ticks are milliseconds), the TCP
//! layer (`tetrabft-net`) applies the very same plan in its send path with
//! wall-clock milliseconds, so one scenario drives both runtimes and their
//! results can be compared directly.
//!
//! Partition semantics match what a supervised TCP link does: frames sent
//! while an edge is severed are *buffered* and released when the window
//! ends (the link reconnects and flushes), not silently lost. Loss is
//! modeled separately by the per-edge drop probability.

use std::collections::HashMap;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::Rng;

use tetrabft_engine::Time;
use tetrabft_types::NodeId;

use crate::policy::{LinkPolicy, Route};

/// Conditioning applied to one directed edge: a base one-way delay, a
/// uniform jitter on top, and an independent drop probability per message.
///
/// Times are milliseconds — the unit both the simulator (one tick = 1 ms)
/// and the TCP runtime (wall clock) use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Base one-way delay in milliseconds.
    pub delay_ms: u64,
    /// Uniform extra delay in `0..=jitter_ms` milliseconds, sampled per
    /// message.
    pub jitter_ms: u64,
    /// Drop probability in parts per million (`1_000_000` = always drop).
    pub drop_ppm: u32,
}

impl EdgeSpec {
    /// A perfect link: zero delay, no jitter, no loss.
    pub const IDEAL: EdgeSpec = EdgeSpec { delay_ms: 0, jitter_ms: 0, drop_ppm: 0 };

    /// A fixed one-way delay with no jitter or loss.
    pub fn delay(delay_ms: u64) -> Self {
        EdgeSpec { delay_ms, jitter_ms: 0, drop_ppm: 0 }
    }

    /// Adds uniform jitter of up to `jitter_ms` milliseconds per message.
    pub fn with_jitter(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Sets the drop probability as a fraction in `0.0..=1.0`.
    pub fn with_drop(mut self, fraction: f64) -> Self {
        self.drop_ppm = (fraction.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        self
    }

    /// Samples one message: `None` if dropped, otherwise the total one-way
    /// delay (base + jitter) in milliseconds.
    pub fn sample(&self, rng: &mut StdRng) -> Option<u64> {
        if self.drop_ppm > 0 && rng.random_range(0..1_000_000u64) < u64::from(self.drop_ppm) {
            return None;
        }
        let jitter = if self.jitter_ms > 0 { rng.random_range(0..=self.jitter_ms) } else { 0 };
        Some(self.delay_ms + jitter)
    }

    /// Worst-case one-way delay (base + full jitter).
    pub fn max_delay_ms(&self) -> u64 {
        self.delay_ms + self.jitter_ms
    }
}

/// Parse error for [`EdgeSpec`], [`PartitionWindow`], and topology-style
/// plan fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    what: String,
}

impl PlanParseError {
    fn new(what: impl Into<String>) -> Self {
        PlanParseError { what: what.into() }
    }
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid link-plan fragment: {}", self.what)
    }
}

impl std::error::Error for PlanParseError {}

impl FromStr for EdgeSpec {
    type Err = PlanParseError;

    /// Parses `"delay=30,jitter=5,drop=0.01"` (any subset of keys; `drop`
    /// is a fraction in `0..=1`).
    fn from_str(s: &str) -> Result<Self, PlanParseError> {
        let mut spec = EdgeSpec::IDEAL;
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| PlanParseError::new(format!("expected key=value, got `{part}`")))?;
            match key.trim() {
                "delay" => {
                    spec.delay_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad delay `{value}`")))?;
                }
                "jitter" => {
                    spec.jitter_ms = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad jitter `{value}`")))?;
                }
                "drop" => {
                    let frac: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanParseError::new(format!("bad drop `{value}`")))?;
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(PlanParseError::new(format!(
                            "drop fraction `{value}` outside 0..=1"
                        )));
                    }
                    spec = spec.with_drop(frac);
                }
                other => {
                    return Err(PlanParseError::new(format!("unknown key `{other}`")));
                }
            }
        }
        Ok(spec)
    }
}

/// A scripted partition: during `start_ms..end_ms` every edge crossing the
/// boundary between `group` and the rest of the cluster is severed.
///
/// Severed traffic is buffered and released at the end of the window (the
/// TCP link closes, reconnects after heal, and flushes its buffer; the
/// simulator delivers at the heal time plus the edge delay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start, inclusive, in milliseconds since the run began.
    pub start_ms: u64,
    /// Window end, exclusive, in milliseconds since the run began.
    pub end_ms: u64,
    group: Vec<u16>,
}

impl PartitionWindow {
    /// Severs `group` from the rest of the cluster during
    /// `start_ms..end_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`start_ms >= end_ms`).
    pub fn isolate(start_ms: u64, end_ms: u64, group: impl IntoIterator<Item = NodeId>) -> Self {
        assert!(start_ms < end_ms, "partition window must be non-empty");
        let mut group: Vec<u16> = group.into_iter().map(|id| id.0).collect();
        group.sort_unstable();
        group.dedup();
        PartitionWindow { start_ms, end_ms, group }
    }

    /// Whether the edge `a`–`b` crosses this partition's boundary.
    pub fn severs(&self, a: NodeId, b: NodeId) -> bool {
        self.group.binary_search(&a.0).is_ok() != self.group.binary_search(&b.0).is_ok()
    }

    /// Whether `at_ms` falls inside the window.
    pub fn contains(&self, at_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&at_ms)
    }

    /// Earliest time at or after `at_ms` at which none of `windows` is
    /// active — when buffered traffic held by these windows is released.
    /// Chained or overlapping windows are walked through to the final heal.
    pub fn release_time(windows: &[PartitionWindow], at_ms: u64) -> u64 {
        let mut at = at_ms;
        loop {
            let Some(end) = windows.iter().filter(|w| w.contains(at)).map(|w| w.end_ms).max()
            else {
                return at;
            };
            at = end;
        }
    }
}

impl FromStr for PartitionWindow {
    type Err = PlanParseError;

    /// Parses `"500..1500:0,3"` — isolate nodes 0 and 3 during
    /// milliseconds 500..1500.
    fn from_str(s: &str) -> Result<Self, PlanParseError> {
        let (range, group) = s
            .split_once(':')
            .ok_or_else(|| PlanParseError::new(format!("expected range:group, got `{s}`")))?;
        let (start, end) = range
            .split_once("..")
            .ok_or_else(|| PlanParseError::new(format!("expected start..end, got `{range}`")))?;
        let start: u64 = start
            .trim()
            .parse()
            .map_err(|_| PlanParseError::new(format!("bad start `{start}`")))?;
        let end: u64 =
            end.trim().parse().map_err(|_| PlanParseError::new(format!("bad end `{end}`")))?;
        if start >= end {
            return Err(PlanParseError::new(format!("empty window `{range}`")));
        }
        let mut ids = Vec::new();
        for id in group.split(',').map(str::trim).filter(|g| !g.is_empty()) {
            let id: u16 =
                id.parse().map_err(|_| PlanParseError::new(format!("bad node id `{id}`")))?;
            ids.push(NodeId(id));
        }
        if ids.is_empty() {
            return Err(PlanParseError::new("partition group is empty"));
        }
        Ok(PartitionWindow::isolate(start, end, ids))
    }
}

/// A whole-network conditioning scenario: a default [`EdgeSpec`], directed
/// per-edge overrides, and scripted [`PartitionWindow`]s.
///
/// # Examples
///
/// ```
/// use tetrabft_sim::{EdgeSpec, LinkPlan, PartitionWindow};
/// use tetrabft_types::NodeId;
///
/// // A 30 ms WAN with 3 ms jitter, one slow transatlantic edge, and a
/// // partition isolating node 0 for the first half second.
/// let plan = LinkPlan::uniform(EdgeSpec::delay(30).with_jitter(3))
///     .link(NodeId(0), NodeId(3), EdgeSpec::delay(80))
///     .partition(PartitionWindow::isolate(0, 500, [NodeId(0)]));
/// assert_eq!(plan.edge_spec(NodeId(0), NodeId(3)).delay_ms, 80);
/// assert_eq!(plan.edge_spec(NodeId(1), NodeId(2)).delay_ms, 30);
/// ```
#[derive(Debug, Clone)]
pub struct LinkPlan {
    default: EdgeSpec,
    edges: HashMap<(u16, u16), EdgeSpec>,
    partitions: Vec<PartitionWindow>,
}

impl Default for LinkPlan {
    fn default() -> Self {
        LinkPlan::ideal()
    }
}

impl LinkPlan {
    /// Perfect links everywhere, no partitions.
    pub fn ideal() -> Self {
        LinkPlan::uniform(EdgeSpec::IDEAL)
    }

    /// The same spec on every edge.
    pub fn uniform(spec: EdgeSpec) -> Self {
        LinkPlan { default: spec, edges: HashMap::new(), partitions: Vec::new() }
    }

    /// A LAN preset: 1 ms one-way delay, no jitter or loss.
    pub fn lan() -> Self {
        LinkPlan::uniform(EdgeSpec::delay(1))
    }

    /// A WAN preset: `one_way_ms` delay with 10% jitter.
    pub fn wan(one_way_ms: u64) -> Self {
        LinkPlan::uniform(EdgeSpec::delay(one_way_ms).with_jitter(one_way_ms / 10))
    }

    /// Per-edge delays from a square matrix: `delays[i][j]` is the one-way
    /// delay of edge `i → j` in milliseconds (the diagonal is ignored —
    /// loopback never touches the network).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(delays: &[Vec<u64>]) -> Self {
        let n = delays.len();
        let mut plan = LinkPlan::ideal();
        for (i, row) in delays.iter().enumerate() {
            assert_eq!(row.len(), n, "delay matrix must be square");
            for (j, &d) in row.iter().enumerate() {
                if i != j {
                    plan.edges.insert((i as u16, j as u16), EdgeSpec::delay(d));
                }
            }
        }
        plan
    }

    /// Overrides one directed edge.
    pub fn edge(mut self, from: NodeId, to: NodeId, spec: EdgeSpec) -> Self {
        self.edges.insert((from.0, to.0), spec);
        self
    }

    /// Overrides both directions between `a` and `b`.
    pub fn link(self, a: NodeId, b: NodeId, spec: EdgeSpec) -> Self {
        self.edge(a, b, spec).edge(b, a, spec)
    }

    /// Adds a scripted partition window.
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// The spec governing `from → to` (the directed override if present,
    /// else the default).
    pub fn edge_spec(&self, from: NodeId, to: NodeId) -> EdgeSpec {
        self.edges.get(&(from.0, to.0)).copied().unwrap_or(self.default)
    }

    /// The scripted partition windows.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// Worst-case one-way delay over all edges of an `n`-node cluster.
    pub fn max_delay_ms(&self, n: usize) -> u64 {
        let mut max = self.default.max_delay_ms();
        for ((from, to), spec) in &self.edges {
            if usize::from(*from) < n && usize::from(*to) < n {
                max = max.max(spec.max_delay_ms());
            }
        }
        max
    }

    /// When a message sent on `from → to` at `at_ms` is released from any
    /// severing partition windows (equal to `at_ms` when unsevered).
    pub fn release_time(&self, from: NodeId, to: NodeId, at_ms: u64) -> u64 {
        let mut at = at_ms;
        loop {
            let Some(end) = self
                .partitions
                .iter()
                .filter(|w| w.severs(from, to) && w.contains(at))
                .map(|w| w.end_ms)
                .max()
            else {
                return at;
            };
            at = end;
        }
    }

    /// Routes one message: `None` if dropped by the edge's loss rate,
    /// otherwise its absolute delivery time in milliseconds — partition
    /// release first (buffered links flush at heal), then the sampled
    /// one-way delay.
    pub fn route_at(&self, from: NodeId, to: NodeId, at_ms: u64, rng: &mut StdRng) -> Option<u64> {
        let delay = self.edge_spec(from, to).sample(rng)?;
        Some(self.release_time(from, to, at_ms) + delay)
    }

    /// The simulator-side view of this plan: a scripted [`LinkPolicy`]
    /// with one tick = one millisecond, exactly mirroring what the TCP
    /// layer's link conditioning does with the wall clock.
    pub fn policy(&self) -> LinkPolicy {
        let plan = self.clone();
        LinkPolicy::scripted(move |env, rng| {
            match plan.route_at(env.from, env.to, env.now.0, rng) {
                Some(at) => Route::DeliverAt(Time(at)),
                None => Route::Drop,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RouteEnv;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn edge_overrides_beat_the_default() {
        let plan =
            LinkPlan::uniform(EdgeSpec::delay(10)).link(NodeId(0), NodeId(1), EdgeSpec::delay(50));
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(1)).delay_ms, 50);
        assert_eq!(plan.edge_spec(NodeId(1), NodeId(0)).delay_ms, 50);
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(2)).delay_ms, 10);
        assert_eq!(plan.max_delay_ms(4), 50);
        assert_eq!(plan.max_delay_ms(1), 10, "override edges outside n are ignored");
    }

    #[test]
    fn matrix_plan_is_directed() {
        let plan = LinkPlan::from_matrix(&[vec![0, 5], vec![9, 0]]);
        assert_eq!(plan.edge_spec(NodeId(0), NodeId(1)).delay_ms, 5);
        assert_eq!(plan.edge_spec(NodeId(1), NodeId(0)).delay_ms, 9);
    }

    #[test]
    fn partitions_buffer_and_release() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(3)).partition(PartitionWindow::isolate(
            100,
            200,
            [NodeId(0)],
        ));
        let mut r = rng();
        // Severed edge: released at heal + delay.
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 150, &mut r), Some(203));
        // Edge inside the majority side is untouched.
        assert_eq!(plan.route_at(NodeId(1), NodeId(2), 150, &mut r), Some(153));
        // Outside the window nothing is severed.
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 300, &mut r), Some(303));
    }

    #[test]
    fn chained_partitions_release_at_the_final_heal() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(1))
            .partition(PartitionWindow::isolate(0, 100, [NodeId(0)]))
            .partition(PartitionWindow::isolate(100, 250, [NodeId(0)]));
        assert_eq!(plan.release_time(NodeId(0), NodeId(1), 10), 250);
        assert_eq!(plan.route_at(NodeId(0), NodeId(1), 10, &mut rng()), Some(251));
    }

    #[test]
    fn drop_rate_is_roughly_honored_and_deterministic() {
        let spec = EdgeSpec::delay(1).with_drop(0.5);
        let sample = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..1000).filter(|_| spec.sample(&mut r).is_none()).count()
        };
        let dropped = sample(3);
        assert!((350..650).contains(&dropped), "≈half dropped, got {dropped}");
        assert_eq!(dropped, sample(3), "sampling is a pure function of the seed");
    }

    #[test]
    fn policy_mirrors_the_plan_in_virtual_time() {
        let plan = LinkPlan::uniform(EdgeSpec::delay(30)).partition(PartitionWindow::isolate(
            0,
            600,
            [NodeId(0)],
        ));
        let mut policy = plan.policy();
        let mut r = rng();
        let env = |from, to, now| RouteEnv { from, to, now: Time(now), size: 8 };
        assert_eq!(
            policy.route(env(NodeId(0), NodeId(2), 5), &mut r),
            Route::DeliverAt(Time(630)),
            "severed traffic heals at the window end plus the edge delay"
        );
        assert_eq!(policy.route(env(NodeId(1), NodeId(2), 5), &mut r), Route::DeliverAt(Time(35)));
    }

    #[test]
    fn edge_spec_parses() {
        let spec: EdgeSpec = "delay=30, jitter=5, drop=0.25".parse().unwrap();
        assert_eq!(spec.delay_ms, 30);
        assert_eq!(spec.jitter_ms, 5);
        assert_eq!(spec.drop_ppm, 250_000);
        assert_eq!("".parse::<EdgeSpec>().unwrap(), EdgeSpec::IDEAL);
        assert!("delay=x".parse::<EdgeSpec>().is_err());
        assert!("speed=1".parse::<EdgeSpec>().is_err());
        assert!("drop=1.5".parse::<EdgeSpec>().is_err());
    }

    #[test]
    fn partition_window_parses() {
        let w: PartitionWindow = "500..1500:0,3".parse().unwrap();
        assert_eq!(w.start_ms, 500);
        assert_eq!(w.end_ms, 1500);
        assert!(w.severs(NodeId(0), NodeId(1)));
        assert!(w.severs(NodeId(3), NodeId(2)));
        assert!(!w.severs(NodeId(0), NodeId(3)), "both isolated: same side");
        assert!(!w.severs(NodeId(1), NodeId(2)));
        assert!("500..400:0".parse::<PartitionWindow>().is_err());
        assert!("0..9:".parse::<PartitionWindow>().is_err());
        assert!("0..9".parse::<PartitionWindow>().is_err());
    }

    #[test]
    fn jitter_bounds_the_sampled_delay() {
        let spec = EdgeSpec::delay(10).with_jitter(4);
        let mut r = rng();
        for _ in 0..200 {
            let d = spec.sample(&mut r).unwrap();
            assert!((10..=14).contains(&d));
        }
        assert_eq!(spec.max_delay_ms(), 14);
    }
}
