//! Communication and progress metrics collected during a run.

use std::collections::BTreeMap;

use tetrabft_types::NodeId;

/// Per-node communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Messages this node handed to the network (loopback excluded).
    pub msgs_sent: u64,
    /// Bytes this node handed to the network (loopback excluded).
    pub bytes_sent: u64,
    /// Messages delivered to this node (loopback excluded).
    pub msgs_received: u64,
    /// Bytes delivered to this node (loopback excluded).
    pub bytes_received: u64,
}

/// Aggregated metrics for a simulation run.
///
/// These feed the communication columns of Table 1 (experiments E1/E6):
/// TetraBFT and IT-HS must show O(n) bytes per node per view (O(n²) total),
/// while PBFT's certificate-carrying view change shows O(n²) per node
/// (O(n³) total).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    per_node: Vec<NodeMetrics>,
    /// Bytes and message counts bucketed by the message's
    /// [`wire_kind`](tetrabft_engine::WireSize::wire_kind) — the per-phase
    /// view the `wire_bytes` bench reports (loopback excluded).
    by_kind: BTreeMap<&'static str, KindMetrics>,
    /// Messages dropped by the link policy (pre-GST loss).
    pub msgs_dropped: u64,
    /// Total input events processed by all nodes.
    pub events_processed: u64,
}

/// Per-message-kind communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindMetrics {
    /// Messages of this kind handed to the network.
    pub msgs: u64,
    /// Bytes of this kind handed to the network.
    pub bytes: u64,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![NodeMetrics::default(); n],
            by_kind: BTreeMap::new(),
            msgs_dropped: 0,
            events_processed: 0,
        }
    }

    pub(crate) fn on_send(&mut self, from: NodeId, kind: &'static str, bytes: usize) {
        let m = &mut self.per_node[from.index()];
        m.msgs_sent += 1;
        m.bytes_sent += bytes as u64;
        let k = self.by_kind.entry(kind).or_default();
        k.msgs += 1;
        k.bytes += bytes as u64;
    }

    pub(crate) fn on_deliver(&mut self, to: NodeId, bytes: usize) {
        let m = &mut self.per_node[to.index()];
        m.msgs_received += 1;
        m.bytes_received += bytes as u64;
    }

    /// Counters for one node.
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        &self.per_node[id.index()]
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.msgs_sent).sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.bytes_sent).sum()
    }

    /// Largest per-node byte count — the "linear per node" claim is about
    /// this quantity.
    pub fn max_node_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.bytes_sent).max().unwrap_or(0)
    }

    /// Counters for one message kind (zero if the kind never hit the wire).
    pub fn kind(&self, kind: &str) -> KindMetrics {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// All per-kind counters, ordered by kind label.
    pub fn by_kind(&self) -> impl Iterator<Item = (&'static str, KindMetrics)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut m = Metrics::new(3);
        m.on_send(NodeId(0), "vote-1", 10);
        m.on_send(NodeId(0), "vote-1", 5);
        m.on_send(NodeId(2), "suggest", 100);
        m.on_deliver(NodeId(1), 10);
        assert_eq!(m.node(NodeId(0)).msgs_sent, 2);
        assert_eq!(m.node(NodeId(0)).bytes_sent, 15);
        assert_eq!(m.node(NodeId(1)).msgs_received, 1);
        assert_eq!(m.total_msgs_sent(), 3);
        assert_eq!(m.total_bytes_sent(), 115);
        assert_eq!(m.max_node_bytes_sent(), 100);
        assert_eq!(m.kind("vote-1"), KindMetrics { msgs: 2, bytes: 15 });
        assert_eq!(m.kind("suggest"), KindMetrics { msgs: 1, bytes: 100 });
        assert_eq!(m.kind("proof"), KindMetrics::default());
        let kinds: Vec<_> = m.by_kind().map(|(k, v)| (k, v.bytes)).collect();
        assert_eq!(kinds, vec![("suggest", 100), ("vote-1", 15)]);
    }
}
