//! Communication and progress metrics collected during a run.

use std::collections::BTreeMap;

use tetrabft_types::{AuditClaim, Evidence, NodeId, Value};

/// Most equivocation-evidence records the recorder retains (dedup is per
/// register, so this only bounds memory against many-register attacks).
const EVIDENCE_CAP: usize = 64;

/// Most first-claim registers tracked. Spraying distinct `(view, phase)`
/// registers past this stops *tracking* new ones (existing convictions
/// stand); honest traffic never gets near it.
const CLAIMS_CAP: usize = 1 << 16;

/// Per-node communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Messages this node handed to the network (loopback excluded).
    pub msgs_sent: u64,
    /// Bytes this node handed to the network (loopback excluded).
    pub bytes_sent: u64,
    /// Messages delivered to this node (loopback excluded).
    pub msgs_received: u64,
    /// Bytes delivered to this node (loopback excluded).
    pub bytes_received: u64,
}

/// Aggregated metrics for a simulation run.
///
/// These feed the communication columns of Table 1 (experiments E1/E6):
/// TetraBFT and IT-HS must show O(n) bytes per node per view (O(n²) total),
/// while PBFT's certificate-carrying view change shows O(n²) per node
/// (O(n³) total).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    per_node: Vec<NodeMetrics>,
    /// Bytes and message counts bucketed by the message's
    /// [`wire_kind`](tetrabft_engine::WireSize::wire_kind) — the per-phase
    /// view the `wire_bytes` bench reports (loopback excluded).
    by_kind: BTreeMap<&'static str, KindMetrics>,
    /// Messages dropped by the link policy (pre-GST loss).
    pub msgs_dropped: u64,
    /// Total input events processed by all nodes.
    pub events_processed: u64,
    /// First value each `(node, slot, view, phase)` register claimed on the
    /// wire — the omniscient accountability ledger. Keyed on raw integers so
    /// iteration (and therefore every run) is deterministic.
    claims: BTreeMap<(u16, Option<u64>, u64, Option<u8>), Value>,
    /// Evidence for senders that claimed one register twice with different
    /// values, in detection order, deduped per register.
    evidence: Vec<Evidence>,
    /// Total conflicting claims observed (counts repeats the evidence log
    /// deduplicates away).
    equivocations: u64,
}

/// Per-message-kind communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindMetrics {
    /// Messages of this kind handed to the network.
    pub msgs: u64,
    /// Bytes of this kind handed to the network.
    pub bytes: u64,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![NodeMetrics::default(); n],
            by_kind: BTreeMap::new(),
            msgs_dropped: 0,
            events_processed: 0,
            claims: BTreeMap::new(),
            evidence: Vec::new(),
            equivocations: 0,
        }
    }

    /// Audits one wire claim from `from`: remembers the first value per
    /// register, convicts on a conflicting re-claim. The transport calls
    /// this for every non-loopback send whose message has an
    /// [`audit_claim`](tetrabft_engine::WireSize::audit_claim).
    pub(crate) fn on_claim(&mut self, from: NodeId, claim: AuditClaim) {
        let key = (from.0, claim.slot.map(|s| s.0), claim.view.0, claim.phase.map(|p| p.as_u8()));
        match self.claims.get(&key) {
            None => {
                if self.claims.len() < CLAIMS_CAP {
                    self.claims.insert(key, claim.value);
                }
            }
            Some(first) if *first != claim.value => {
                self.equivocations += 1;
                let ev = Evidence {
                    node: from,
                    slot: claim.slot,
                    view: claim.view,
                    phase: claim.phase,
                    first: *first,
                    second: claim.value,
                };
                let dup = self.evidence.iter().any(|e| {
                    e.node == ev.node
                        && e.slot == ev.slot
                        && e.view == ev.view
                        && e.phase == ev.phase
                });
                if !dup && self.evidence.len() < EVIDENCE_CAP {
                    self.evidence.push(ev);
                }
            }
            Some(_) => {}
        }
    }

    /// Equivocation evidence the omniscient recorder collected, in detection
    /// order: each record names a sender that claimed one write-once
    /// register with two different values.
    pub fn evidence(&self) -> &[Evidence] {
        &self.evidence
    }

    /// Total conflicting wire claims observed (repeat offences included;
    /// [`Metrics::evidence`] dedups per register).
    pub fn equivocations(&self) -> u64 {
        self.equivocations
    }

    pub(crate) fn on_send(&mut self, from: NodeId, kind: &'static str, bytes: usize) {
        let m = &mut self.per_node[from.index()];
        m.msgs_sent += 1;
        m.bytes_sent += bytes as u64;
        let k = self.by_kind.entry(kind).or_default();
        k.msgs += 1;
        k.bytes += bytes as u64;
    }

    pub(crate) fn on_deliver(&mut self, to: NodeId, bytes: usize) {
        let m = &mut self.per_node[to.index()];
        m.msgs_received += 1;
        m.bytes_received += bytes as u64;
    }

    /// Counters for one node.
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        &self.per_node[id.index()]
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.msgs_sent).sum()
    }

    /// Total bytes sent across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.bytes_sent).sum()
    }

    /// Largest per-node byte count — the "linear per node" claim is about
    /// this quantity.
    pub fn max_node_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|m| m.bytes_sent).max().unwrap_or(0)
    }

    /// Counters for one message kind (zero if the kind never hit the wire).
    pub fn kind(&self, kind: &str) -> KindMetrics {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// All per-kind counters, ordered by kind label.
    pub fn by_kind(&self) -> impl Iterator<Item = (&'static str, KindMetrics)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut m = Metrics::new(3);
        m.on_send(NodeId(0), "vote-1", 10);
        m.on_send(NodeId(0), "vote-1", 5);
        m.on_send(NodeId(2), "suggest", 100);
        m.on_deliver(NodeId(1), 10);
        assert_eq!(m.node(NodeId(0)).msgs_sent, 2);
        assert_eq!(m.node(NodeId(0)).bytes_sent, 15);
        assert_eq!(m.node(NodeId(1)).msgs_received, 1);
        assert_eq!(m.total_msgs_sent(), 3);
        assert_eq!(m.total_bytes_sent(), 115);
        assert_eq!(m.max_node_bytes_sent(), 100);
        assert_eq!(m.kind("vote-1"), KindMetrics { msgs: 2, bytes: 15 });
        assert_eq!(m.kind("suggest"), KindMetrics { msgs: 1, bytes: 100 });
        assert_eq!(m.kind("proof"), KindMetrics::default());
        let kinds: Vec<_> = m.by_kind().map(|(k, v)| (k, v.bytes)).collect();
        assert_eq!(kinds, vec![("suggest", 100), ("vote-1", 15)]);
    }

    #[test]
    fn claim_audit_convicts_conflicting_senders() {
        use tetrabft_types::{Phase, View};
        let claim = |view: u64, value: u64| AuditClaim {
            slot: None,
            view: View(view),
            phase: Some(Phase::VOTE1),
            value: Value::from_u64(value),
        };
        let mut m = Metrics::new(3);
        m.on_claim(NodeId(0), claim(1, 5));
        m.on_claim(NodeId(0), claim(1, 5)); // duplicate, honest
        m.on_claim(NodeId(1), claim(1, 6)); // different node, same register
        assert!(m.evidence().is_empty());
        assert_eq!(m.equivocations(), 0);
        m.on_claim(NodeId(0), claim(1, 7)); // conflict
        m.on_claim(NodeId(0), claim(1, 8)); // repeat offence, same register
        assert_eq!(m.equivocations(), 2);
        assert_eq!(m.evidence().len(), 1, "deduped per register");
        let ev = m.evidence()[0];
        assert_eq!(ev.node, NodeId(0));
        assert_eq!((ev.first, ev.second), (Value::from_u64(5), Value::from_u64(7)));
    }
}
