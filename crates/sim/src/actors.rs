//! Generic actors for fault injection: crashed nodes, closure-driven
//! strategies, and composable Byzantine behaviors for the adversary fuzzer.

use std::marker::PhantomData;

use tetrabft_engine::{Action, ActionBuf, Context, Dest, Input, Node, Time, TimerId, WireSize};
use tetrabft_types::NodeId;

/// A node that never sends anything — models a crashed / silent Byzantine
/// node (the weakest adversary, but enough to force view changes).
///
/// # Examples
///
/// ```
/// use tetrabft_sim::SilentNode;
/// let _crash: SilentNode<u8, ()> = SilentNode::new();
/// ```
#[derive(Debug)]
pub struct SilentNode<M, O> {
    _marker: PhantomData<fn() -> (M, O)>,
}

impl<M, O> SilentNode<M, O> {
    /// Creates a silent node.
    pub fn new() -> Self {
        SilentNode { _marker: PhantomData }
    }
}

impl<M, O> Default for SilentNode<M, O> {
    fn default() -> Self {
        SilentNode::new()
    }
}

impl<M: WireSize + Clone, O> Node for SilentNode<M, O> {
    type Msg = M;
    type Output = O;
    fn handle(&mut self, _input: Input<M>, _ctx: &mut Context<'_, M, O>) {}
}

/// A node driven by a closure — the building block for protocol-specific
/// Byzantine strategies (equivocators, value spammers, stale-view replayers).
///
/// # Examples
///
/// A node that echoes every message back to its sender:
///
/// ```
/// use tetrabft_sim::{FnNode, Input};
///
/// # #[derive(Clone)] struct M;
/// # impl tetrabft_sim::WireSize for M { fn wire_size(&self) -> usize { 1 } }
/// let echo = FnNode::<M, (), _>::new(|input, ctx| {
///     if let Input::Deliver { from, msg } = input {
///         ctx.send(from, msg);
///     }
/// });
/// ```
pub struct FnNode<M, O, F> {
    f: F,
    _marker: PhantomData<fn() -> (M, O)>,
}

impl<M, O, F> FnNode<M, O, F>
where
    F: FnMut(Input<M>, &mut Context<'_, M, O>),
{
    /// Wraps `f` as a node.
    pub fn new(f: F) -> Self {
        FnNode { f, _marker: PhantomData }
    }
}

impl<M: WireSize + Clone, O, F> Node for FnNode<M, O, F>
where
    F: FnMut(Input<M>, &mut Context<'_, M, O>),
{
    type Msg = M;
    type Output = O;
    fn handle(&mut self, input: Input<M>, ctx: &mut Context<'_, M, O>) {
        (self.f)(input, ctx)
    }
}

/// Environment snapshot handed to a [`Behavior`]: who the Byzantine node is,
/// how many nodes exist, and the current virtual time.
#[derive(Debug, Clone, Copy)]
pub struct BehaviorEnv {
    /// The Byzantine node's own id.
    pub me: NodeId,
    /// Number of nodes in the system.
    pub n: usize,
    /// Current virtual time.
    pub now: Time,
}

/// One composable Byzantine sub-strategy.
///
/// A behavior reacts to an input by queueing `(destination, message)` pairs;
/// the hosting [`ByzantineActor`] composes several behaviors, applies its
/// selective-silence filter and emission budget, and performs the sends.
/// Keeping behaviors send-only (no timers, no outputs) is what makes
/// arbitrary compositions safe: two behaviors can never fight over a timer.
pub trait Behavior<M> {
    /// Reacts to `input`, pushing any sends into `out`.
    ///
    /// `Dest::All` means "every *other* node" — the actor never delivers to
    /// itself, so behaviors cannot self-amplify through loopback.
    fn react(&mut self, input: &Input<M>, env: &BehaviorEnv, out: &mut Vec<(Dest, M)>);
}

/// A [`Behavior`] backed by a closure.
///
/// # Examples
///
/// A vote-echo behavior that replays every delivered message back at the
/// whole system:
///
/// ```
/// use tetrabft_sim::{BehaviorEnv, Dest, FnBehavior, Input};
///
/// let echo = FnBehavior::new(|input: &Input<u8>, _env: &BehaviorEnv, out: &mut Vec<(Dest, u8)>| {
///     if let Input::Deliver { msg, .. } = input {
///         out.push((Dest::All, *msg));
///     }
/// });
/// # let _ = echo;
/// ```
pub struct FnBehavior<F> {
    f: F,
}

impl<F> FnBehavior<F> {
    /// Wraps `f` as a behavior.
    pub fn new(f: F) -> Self {
        FnBehavior { f }
    }
}

impl<M, F> Behavior<M> for FnBehavior<F>
where
    F: FnMut(&Input<M>, &BehaviorEnv, &mut Vec<(Dest, M)>),
{
    fn react(&mut self, input: &Input<M>, env: &BehaviorEnv, out: &mut Vec<(Dest, M)>) {
        (self.f)(input, env, out)
    }
}

/// Timer id the [`ByzantineActor`] uses for its periodic tick — far outside
/// any protocol's timer space.
pub const BYZ_TICK: TimerId = TimerId(u64::MAX - 1);

/// Default total-emission budget of a [`ByzantineActor`]. Generous enough
/// for any real attack in a bounded-horizon run, small enough that a
/// pathological behavior composition cannot wedge the event queue.
pub const DEFAULT_BYZ_BUDGET: u64 = 4096;

/// A Byzantine node assembled from composable [`Behavior`]s — the fuzzer's
/// unit of adversary sampling.
///
/// The actor:
/// * feeds every input (boots, deliveries from *other* nodes, its periodic
///   [`BYZ_TICK`]) to each behavior in order;
/// * expands `Dest::All` into per-node sends, **never to itself** (no
///   loopback self-amplification);
/// * drops sends toward nodes in its selective-silence set;
/// * stops emitting once its total budget is exhausted, so a runaway
///   composition cannot flood the simulation.
///
/// # Examples
///
/// A pure value-spammer ticking every 50 ms:
///
/// ```
/// use tetrabft_sim::{BehaviorEnv, ByzantineActor, Dest, FnBehavior, Input};
///
/// let spam = FnBehavior::new(|input: &Input<u8>, _env: &BehaviorEnv, out: &mut Vec<(Dest, u8)>| {
///     if matches!(input, Input::Timer { .. }) {
///         out.push((Dest::All, 0xee));
///     }
/// });
/// let actor: ByzantineActor<u8, ()> =
///     ByzantineActor::new().with_behavior(spam).tick_every(50);
/// # let _ = actor;
/// ```
pub struct ByzantineActor<M, O> {
    behaviors: Vec<Box<dyn Behavior<M>>>,
    silenced: Vec<NodeId>,
    tick_every: Option<u64>,
    budget: u64,
    scratch: Vec<(Dest, M)>,
    _marker: PhantomData<fn() -> O>,
}

impl<M, O> ByzantineActor<M, O> {
    /// An actor with no behaviors (equivalent to [`SilentNode`] until
    /// behaviors are added).
    pub fn new() -> Self {
        ByzantineActor {
            behaviors: Vec::new(),
            silenced: Vec::new(),
            tick_every: None,
            budget: DEFAULT_BYZ_BUDGET,
            scratch: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Adds a behavior; behaviors react to every input in insertion order.
    pub fn with_behavior(mut self, b: impl Behavior<M> + 'static) -> Self {
        self.behaviors.push(Box::new(b));
        self
    }

    /// Selective silence: sends toward `targets` are dropped (the node
    /// looks crashed to them, Byzantine to everyone else).
    pub fn silence_toward(mut self, targets: impl IntoIterator<Item = NodeId>) -> Self {
        self.silenced.extend(targets);
        self
    }

    /// Arms a periodic [`BYZ_TICK`] every `ms` ticks, for behaviors that
    /// emit spontaneously rather than reactively.
    pub fn tick_every(mut self, ms: u64) -> Self {
        self.tick_every = Some(ms.max(1));
        self
    }

    /// Caps the total number of messages the actor will ever emit
    /// (default [`DEFAULT_BYZ_BUDGET`]).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }
}

impl<M, O> Default for ByzantineActor<M, O> {
    fn default() -> Self {
        ByzantineActor::new()
    }
}

impl<M: WireSize + Clone, O> Node for ByzantineActor<M, O> {
    type Msg = M;
    type Output = O;

    fn handle(&mut self, input: Input<M>, ctx: &mut Context<'_, M, O>) {
        match &input {
            Input::Start => {
                if let Some(every) = self.tick_every {
                    ctx.set_timer(BYZ_TICK, every);
                }
            }
            // Own loopback deliveries are ignored: Dest::All expansion
            // already skips `me`, and dropping strays here keeps any
            // hand-built scenario from self-amplifying.
            Input::Deliver { from, .. } if *from == ctx.me() => return,
            Input::Timer { id } if *id == BYZ_TICK => {
                if let Some(every) = self.tick_every {
                    ctx.set_timer(BYZ_TICK, every);
                }
            }
            _ => {}
        }
        let env = BehaviorEnv { me: ctx.me(), n: ctx.n(), now: ctx.now() };
        self.scratch.clear();
        for b in &mut self.behaviors {
            b.react(&input, &env, &mut self.scratch);
        }
        for (dest, msg) in self.scratch.drain(..) {
            match dest {
                Dest::All => {
                    for i in 0..env.n as u16 {
                        let to = NodeId(i);
                        if to == env.me || self.silenced.contains(&to) {
                            continue;
                        }
                        if self.budget == 0 {
                            return;
                        }
                        self.budget -= 1;
                        ctx.send(to, msg.clone());
                    }
                }
                Dest::Node(to) => {
                    if to == env.me || self.silenced.contains(&to) {
                        continue;
                    }
                    if self.budget == 0 {
                        return;
                    }
                    self.budget -= 1;
                    ctx.send(to, msg);
                }
            }
        }
    }
}

/// Wraps an honest node, silently dropping its outbound traffic toward a
/// set of targets — selective silence over an otherwise *correct* protocol
/// participant (it looks crashed to the targets and honest to everyone
/// else, the classic quorum-splitting adversary).
///
/// The inner node runs against a buffered [`Context`]; the wrapper replays
/// every recorded action, filtering sends. `Dest::All` broadcasts are
/// expanded per node so individual targets can be dropped; the node's own
/// loopback delivery is always preserved (silencing must not corrupt the
/// inner node's own state).
pub struct FilteredNode<N: Node> {
    inner: N,
    silenced: Vec<NodeId>,
    buf: ActionBuf<N::Msg, N::Output>,
}

impl<N: Node> FilteredNode<N> {
    /// Wraps `inner`, dropping its sends toward `silenced`.
    pub fn new(inner: N, silenced: impl IntoIterator<Item = NodeId>) -> Self {
        FilteredNode { inner, silenced: silenced.into_iter().collect(), buf: ActionBuf::new() }
    }

    /// The wrapped node.
    pub fn inner(&self) -> &N {
        &self.inner
    }
}

impl<N: Node> Node for FilteredNode<N> {
    type Msg = N::Msg;
    type Output = N::Output;

    fn handle(&mut self, input: Input<N::Msg>, ctx: &mut Context<'_, N::Msg, N::Output>) {
        self.buf.clear();
        let mut inner_ctx = Context::buffered(ctx.me(), ctx.n(), ctx.now(), &mut self.buf);
        self.inner.handle(input, &mut inner_ctx);
        for action in std::mem::take(&mut self.buf) {
            match action {
                Action::Send { dest: Dest::All, msg } => {
                    for i in 0..ctx.n() as u16 {
                        let to = NodeId(i);
                        if to != ctx.me() && self.silenced.contains(&to) {
                            continue;
                        }
                        ctx.send(to, msg.clone());
                    }
                }
                Action::Send { dest: Dest::Node(to), msg } => {
                    if to == ctx.me() || !self.silenced.contains(&to) {
                        ctx.send(to, msg);
                    }
                }
                Action::SetTimer { id, after } => ctx.set_timer(id, after),
                Action::CancelTimer { id } => ctx.cancel_timer(id),
                Action::Output(out) => ctx.output(out),
            }
        }
    }

    fn persist(&mut self) {
        self.inner.persist()
    }

    fn incarnation(&self) -> u64 {
        self.inner.incarnation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct M(u8);
    impl WireSize for M {
        fn wire_size(&self) -> usize {
            1
        }
    }

    fn drive<N: Node>(node: &mut N, input: Input<N::Msg>) -> Vec<Action<N::Msg, N::Output>> {
        let mut buf = ActionBuf::new();
        let mut ctx = Context::buffered(NodeId(0), 4, Time(0), &mut buf);
        node.handle(input, &mut ctx);
        buf.into_iter().collect()
    }

    fn sent_to(actions: &[Action<M, ()>]) -> Vec<u16> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { dest: Dest::Node(to), .. } => Some(to.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn byzantine_actor_expands_broadcasts_skipping_self_and_silenced() {
        let echo = FnBehavior::new(|input: &Input<M>, _env: &BehaviorEnv, out: &mut Vec<_>| {
            if let Input::Deliver { msg, .. } = input {
                out.push((Dest::All, *msg));
            }
        });
        let mut actor: ByzantineActor<M, ()> =
            ByzantineActor::new().with_behavior(echo).silence_toward([NodeId(2)]);
        let actions = drive(&mut actor, Input::Deliver { from: NodeId(1), msg: M(7) });
        assert_eq!(sent_to(&actions), vec![1, 3], "skips self (0) and silenced (2)");
        // Own loopback deliveries are ignored entirely.
        let actions = drive(&mut actor, Input::Deliver { from: NodeId(0), msg: M(7) });
        assert!(actions.is_empty());
    }

    #[test]
    fn byzantine_actor_budget_stops_emission() {
        let spam = FnBehavior::new(|_: &Input<M>, _env: &BehaviorEnv, out: &mut Vec<_>| {
            out.push((Dest::All, M(1)));
        });
        let mut actor: ByzantineActor<M, ()> =
            ByzantineActor::new().with_behavior(spam).with_budget(2);
        let actions = drive(&mut actor, Input::Deliver { from: NodeId(1), msg: M(0) });
        assert_eq!(sent_to(&actions).len(), 2, "budget caps mid-broadcast");
        let actions = drive(&mut actor, Input::Deliver { from: NodeId(1), msg: M(0) });
        assert!(sent_to(&actions).is_empty(), "budget exhausted");
    }

    #[test]
    fn byzantine_actor_ticks_rearm() {
        let mut actor: ByzantineActor<M, ()> = ByzantineActor::new().tick_every(50);
        let actions = drive(&mut actor, Input::Start);
        assert!(matches!(actions[..], [Action::SetTimer { id: BYZ_TICK, after: 50 }]));
        let actions = drive(&mut actor, Input::Timer { id: BYZ_TICK });
        assert!(matches!(actions[..], [Action::SetTimer { id: BYZ_TICK, after: 50 }]));
    }

    #[test]
    fn filtered_node_drops_only_silenced_targets() {
        // An inner node that broadcasts on Start, sends to 2 on Deliver,
        // and keeps a timer armed.
        let inner = FnNode::<M, (), _>::new(|input, ctx| match input {
            Input::Start => {
                ctx.broadcast(M(1));
                ctx.set_timer(TimerId(9), 10);
            }
            Input::Deliver { .. } => ctx.send(NodeId(2), M(2)),
            _ => {}
        });
        let mut node = FilteredNode::new(inner, [NodeId(2)]);
        let actions = drive(&mut node, Input::Start);
        // Broadcast expands to 0 (self, kept), 1, 3 — 2 is silenced.
        assert_eq!(sent_to(&actions), vec![0, 1, 3]);
        assert!(actions.iter().any(|a| matches!(a, Action::SetTimer { id: TimerId(9), .. })));
        let actions = drive(&mut node, Input::Deliver { from: NodeId(1), msg: M(0) });
        assert!(sent_to(&actions).is_empty(), "direct send to silenced target dropped");
    }
}
