//! Generic actors for fault injection: crashed nodes and closure-driven
//! Byzantine strategies.

use std::marker::PhantomData;

use tetrabft_engine::{Context, Input, Node, WireSize};

/// A node that never sends anything — models a crashed / silent Byzantine
/// node (the weakest adversary, but enough to force view changes).
///
/// # Examples
///
/// ```
/// use tetrabft_sim::SilentNode;
/// let _crash: SilentNode<u8, ()> = SilentNode::new();
/// ```
#[derive(Debug)]
pub struct SilentNode<M, O> {
    _marker: PhantomData<fn() -> (M, O)>,
}

impl<M, O> SilentNode<M, O> {
    /// Creates a silent node.
    pub fn new() -> Self {
        SilentNode { _marker: PhantomData }
    }
}

impl<M, O> Default for SilentNode<M, O> {
    fn default() -> Self {
        SilentNode::new()
    }
}

impl<M: WireSize + Clone, O> Node for SilentNode<M, O> {
    type Msg = M;
    type Output = O;
    fn handle(&mut self, _input: Input<M>, _ctx: &mut Context<'_, M, O>) {}
}

/// A node driven by a closure — the building block for protocol-specific
/// Byzantine strategies (equivocators, value spammers, stale-view replayers).
///
/// # Examples
///
/// A node that echoes every message back to its sender:
///
/// ```
/// use tetrabft_sim::{FnNode, Input};
///
/// # #[derive(Clone)] struct M;
/// # impl tetrabft_sim::WireSize for M { fn wire_size(&self) -> usize { 1 } }
/// let echo = FnNode::<M, (), _>::new(|input, ctx| {
///     if let Input::Deliver { from, msg } = input {
///         ctx.send(from, msg);
///     }
/// });
/// ```
pub struct FnNode<M, O, F> {
    f: F,
    _marker: PhantomData<fn() -> (M, O)>,
}

impl<M, O, F> FnNode<M, O, F>
where
    F: FnMut(Input<M>, &mut Context<'_, M, O>),
{
    /// Wraps `f` as a node.
    pub fn new(f: F) -> Self {
        FnNode { f, _marker: PhantomData }
    }
}

impl<M: WireSize + Clone, O, F> Node for FnNode<M, O, F>
where
    F: FnMut(Input<M>, &mut Context<'_, M, O>),
{
    type Msg = M;
    type Output = O;
    fn handle(&mut self, input: Input<M>, ctx: &mut Context<'_, M, O>) {
        (self.f)(input, ctx)
    }
}
