//! Optional event trace, used to regenerate the paper's worked figures.

use tetrabft_types::NodeId;

use tetrabft_engine::Time;

/// One traced network event.
///
/// Traces are opt-in ([`crate::SimBuilder::record_trace`]) because they grow
/// with the run; the figure-reproduction benches use them to print the
/// per-slot message timelines of Fig. 2 and Fig. 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent<M> {
    /// A message was handed to the network.
    Sent {
        /// Send time.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// A message was delivered to its receiver.
    Delivered {
        /// Delivery time.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// A message was dropped by the link policy.
    Dropped {
        /// Send time.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
}

impl<M> TraceEvent<M> {
    /// The time the event occurred.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. } => *at,
        }
    }
}
