//! Deterministic discrete-event simulator for partially-synchronous,
//! unauthenticated message-passing systems.
//!
//! This crate is the evaluation substrate for the TetraBFT reproduction. It
//! models exactly the system of Section 2 of the paper:
//!
//! * `n` nodes exchanging messages over **authenticated channels** (the
//!   simulator attributes every delivery to its true sender — that is all
//!   "authenticated channels" means; there are no signatures anywhere);
//! * **partial synchrony**: before an unknown global stabilization time
//!   (GST) messages may be arbitrarily delayed or lost; after GST every
//!   message is delivered within a known bound Δ (and, for responsiveness
//!   experiments, within the *actual* network delay δ ≤ Δ);
//! * local timers that tick at the same rate at every node;
//! * Byzantine nodes that may send arbitrary messages to arbitrary subsets
//!   of nodes (equivocation included).
//!
//! Protocols are plugged in as deterministic [`Node`] state machines, so a
//! simulation run is a pure function of `(protocol, policy, seed)` — every
//! experiment in `EXPERIMENTS.md` is exactly reproducible.
//!
//! Latency accounting: under [`LinkPolicy::synchronous`]`(1)` every network
//! hop costs one tick, so a decision at tick `k` means the protocol used `k`
//! *message delays* — the unit Table 1 of the paper is expressed in.
//!
//! # Examples
//!
//! A two-node ping/pong echo, measured in message delays:
//!
//! ```
//! use tetrabft_sim::{Context, Input, LinkPolicy, Node, SimBuilder, WireSize};
//! use tetrabft_types::NodeId;
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 4 }
//! }
//!
//! struct Echo;
//! impl Node for Echo {
//!     type Msg = Ping;
//!     type Output = u32;
//!     fn handle(&mut self, input: Input<Ping>, ctx: &mut Context<'_, Ping, u32>) {
//!         match input {
//!             Input::Start if ctx.me() == NodeId(0) => ctx.send(NodeId(1), Ping(0)),
//!             Input::Deliver { msg: Ping(k), .. } if k < 4 => {
//!                 let peer = NodeId(1 - ctx.me().0);
//!                 ctx.send(peer, Ping(k + 1));
//!             }
//!             Input::Deliver { msg: Ping(k), .. } => ctx.output(k),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = SimBuilder::new(2)
//!     .policy(LinkPolicy::synchronous(1))
//!     .build(|_id| Echo);
//! sim.run_until_quiet(1_000);
//! assert_eq!(sim.outputs().len(), 1);
//! assert_eq!(sim.outputs()[0].time.0, 5); // five one-delay hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actors;
mod metrics;
mod plan;
mod policy;
mod queue;
mod runner;
mod trace;

pub use actors::{
    Behavior, BehaviorEnv, ByzantineActor, FilteredNode, FnBehavior, FnNode, SilentNode, BYZ_TICK,
    DEFAULT_BYZ_BUDGET,
};
pub use metrics::{KindMetrics, Metrics, NodeMetrics};
pub use plan::{EdgeSpec, LinkPlan, PartitionWindow, PlanParseError};
pub use policy::{LinkPolicy, Route, RouteEnv};
pub use runner::{OutputRecord, Sim, SimBuilder};
// The node abstraction and the engine loop live in `tetrabft-engine`; the
// simulator re-exports them so protocol crates keep a single import path.
pub use tetrabft_engine::{
    Action, ActionBuf, Context, Dest, Engine, EngineEvent, FrameRequest, Input, Node, Submitter,
    Time, TimerId, Transport, WireSize, NEVER,
};
pub use trace::TraceEvent;
