//! Network link policies: synchrony, partial synchrony, adversarial control.

use rand::rngs::StdRng;
use rand::Rng;

use tetrabft_types::NodeId;

use tetrabft_engine::Time;

/// Everything a policy may condition a routing decision on.
#[derive(Debug, Clone, Copy)]
pub struct RouteEnv {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Send time.
    pub now: Time,
    /// Encoded message size in bytes.
    pub size: usize,
}

/// Outcome of routing one message over one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver at the given absolute time (must be ≥ send time).
    DeliverAt(Time),
    /// Silently lose the message (only legitimate before GST).
    Drop,
}

/// A fully scripted routing function.
type ScriptFn = Box<dyn FnMut(RouteEnv, &mut StdRng) -> Route + Send>;

enum PolicyKind {
    Synchronous { delay: u64 },
    PartialSynchrony { gst: Time, delta: u64, actual: u64, drop_before_gst: bool },
    Jittered { min: u64, max: u64 },
    Scripted(ScriptFn),
}

/// Decides, per message, when (or whether) it is delivered.
///
/// The built-in constructors cover every scenario the paper's evaluation
/// needs; [`LinkPolicy::scripted`] admits arbitrary adversarial schedules.
///
/// # Examples
///
/// ```
/// use tetrabft_sim::{LinkPolicy, Time};
/// // Synchronous network, one tick per hop (latency in message delays).
/// let _unit = LinkPolicy::synchronous(1);
/// // Asynchronous until t=50 (messages lost), then delivery within Δ=10,
/// // actually arriving after δ=2.
/// let _ps = LinkPolicy::partial_synchrony(Time(50), 10, 2);
/// ```
pub struct LinkPolicy {
    kind: PolicyKind,
}

impl std::fmt::Debug for LinkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self.kind {
            PolicyKind::Synchronous { .. } => "Synchronous",
            PolicyKind::PartialSynchrony { .. } => "PartialSynchrony",
            PolicyKind::Jittered { .. } => "Jittered",
            PolicyKind::Scripted(_) => "Scripted",
        };
        f.debug_struct("LinkPolicy").field("kind", &name).finish()
    }
}

impl LinkPolicy {
    /// Every message takes exactly `delay` ticks. With `delay = 1`, decision
    /// times are message-delay counts — the unit used by Table 1.
    pub fn synchronous(delay: u64) -> Self {
        LinkPolicy { kind: PolicyKind::Synchronous { delay } }
    }

    /// The partial-synchrony model of Section 2.
    ///
    /// Before `gst`: if `drop` (the default of this constructor) messages
    /// are lost, matching the paper's observation that constant storage
    /// forces tolerating pre-GST loss. After `gst`: messages arrive after
    /// the *actual* delay `actual`, which must be ≤ `delta` (the known
    /// bound Δ used for timeouts).
    ///
    /// # Panics
    ///
    /// Panics if `actual > delta` — the model requires δ ≤ Δ.
    pub fn partial_synchrony(gst: Time, delta: u64, actual: u64) -> Self {
        assert!(actual <= delta, "actual delay δ must not exceed the bound Δ");
        LinkPolicy {
            kind: PolicyKind::PartialSynchrony { gst, delta, actual, drop_before_gst: true },
        }
    }

    /// Partial synchrony where pre-GST messages are delayed until GST
    /// instead of dropped (a milder adversary; useful to separate loss
    /// effects from delay effects in tests).
    pub fn partial_synchrony_delaying(gst: Time, delta: u64, actual: u64) -> Self {
        assert!(actual <= delta, "actual delay δ must not exceed the bound Δ");
        LinkPolicy {
            kind: PolicyKind::PartialSynchrony { gst, delta, actual, drop_before_gst: false },
        }
    }

    /// Uniformly random per-message delay in `min..=max` ticks (synchronous
    /// but jittery; exercises message reordering).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn jittered(min: u64, max: u64) -> Self {
        assert!(min <= max, "jitter interval must be non-empty");
        LinkPolicy { kind: PolicyKind::Jittered { min, max } }
    }

    /// Fully scripted policy; receives every routing decision.
    pub fn scripted(f: impl FnMut(RouteEnv, &mut StdRng) -> Route + Send + 'static) -> Self {
        LinkPolicy { kind: PolicyKind::Scripted(Box::new(f)) }
    }

    /// Routes one message. Loopback (`from == to`) never reaches the policy;
    /// the runner delivers it instantly.
    pub fn route(&mut self, env: RouteEnv, rng: &mut StdRng) -> Route {
        match &mut self.kind {
            PolicyKind::Synchronous { delay } => Route::DeliverAt(env.now + *delay),
            PolicyKind::PartialSynchrony { gst, delta, actual, drop_before_gst } => {
                debug_assert!(*actual <= *delta);
                if env.now < *gst {
                    if *drop_before_gst {
                        Route::Drop
                    } else {
                        // Held by the adversary, released at GST + δ.
                        Route::DeliverAt(*gst + *actual)
                    }
                } else {
                    Route::DeliverAt(env.now + *actual)
                }
            }
            PolicyKind::Jittered { min, max } => {
                let d = rng.random_range(*min..=*max);
                Route::DeliverAt(env.now + d)
            }
            PolicyKind::Scripted(f) => f(env, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn env(now: u64) -> RouteEnv {
        RouteEnv { from: NodeId(0), to: NodeId(1), now: Time(now), size: 8 }
    }

    #[test]
    fn synchronous_is_fixed() {
        let mut p = LinkPolicy::synchronous(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.route(env(10), &mut rng), Route::DeliverAt(Time(13)));
    }

    #[test]
    fn partial_synchrony_drops_then_bounds() {
        let mut p = LinkPolicy::partial_synchrony(Time(100), 10, 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.route(env(99), &mut rng), Route::Drop);
        assert_eq!(p.route(env(100), &mut rng), Route::DeliverAt(Time(104)));
        assert_eq!(p.route(env(150), &mut rng), Route::DeliverAt(Time(154)));
    }

    #[test]
    fn delaying_variant_holds_until_gst() {
        let mut p = LinkPolicy::partial_synchrony_delaying(Time(100), 10, 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.route(env(7), &mut rng), Route::DeliverAt(Time(104)));
    }

    #[test]
    #[should_panic(expected = "actual delay")]
    fn delta_bound_enforced() {
        let _ = LinkPolicy::partial_synchrony(Time(0), 5, 6);
    }

    #[test]
    fn jitter_stays_in_range_and_is_deterministic() {
        let mut p = LinkPolicy::jittered(2, 5);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let ra = p.route(env(0), &mut a);
            let rb = {
                let mut p2 = LinkPolicy::jittered(2, 5);
                // fresh policy, same rng stream position
                p2.route(env(0), &mut b)
            };
            assert_eq!(ra, rb);
            match ra {
                Route::DeliverAt(t) => assert!((2..=5).contains(&t.0)),
                Route::Drop => panic!("jitter never drops"),
            }
        }
    }

    #[test]
    fn scripted_policy_sees_env() {
        let mut p = LinkPolicy::scripted(|e, _| {
            if e.to == NodeId(1) {
                Route::Drop
            } else {
                Route::DeliverAt(e.now + 1)
            }
        });
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.route(env(0), &mut rng), Route::Drop);
        let other = RouteEnv { to: NodeId(2), ..env(0) };
        assert_eq!(p.route(other, &mut rng), Route::DeliverAt(Time(1)));
    }
}
