//! The simulation engine: a deterministic virtual-time [`Transport`]
//! underneath the shared [`tetrabft_engine::Engine`] loop.
//!
//! The simulator no longer owns any protocol-driving logic — timer
//! generations, action dispatch, and the input mux live in
//! `tetrabft-engine`. What remains here is purely the *environment*: a
//! global virtual-time event queue, seeded link policies, metrics, and
//! traces.

use rand::rngs::StdRng;
use rand::SeedableRng;

use tetrabft_engine::{Dest, Engine, Node, Time, TimerId, Transport, WireSize};
use tetrabft_types::NodeId;

use crate::metrics::Metrics;
use crate::policy::{LinkPolicy, Route, RouteEnv};
use crate::queue::{EventKind, EventQueue};
use crate::trace::TraceEvent;

/// A protocol output captured by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRecord<O> {
    /// Node that produced the output.
    pub node: NodeId,
    /// Virtual time of the output.
    pub time: Time,
    /// The output itself.
    pub output: O,
}

/// Builder for a [`Sim`].
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct SimBuilder {
    n: usize,
    seed: u64,
    policy: LinkPolicy,
    record_trace: bool,
    batched: bool,
}

impl SimBuilder {
    /// Starts building a simulation of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "simulation needs at least one node");
        SimBuilder {
            n,
            seed: 0,
            policy: LinkPolicy::synchronous(1),
            record_trace: false,
            batched: false,
        }
    }

    /// Seeds the deterministic RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the link policy (default: synchronous unit delay).
    pub fn policy(mut self, policy: LinkPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the link policy from a declarative [`crate::LinkPlan`] — the
    /// same plan the TCP layer (`tetrabft-net`) consumes, so one scenario
    /// description drives both runtimes (one tick = one millisecond).
    pub fn plan(self, plan: &crate::LinkPlan) -> Self {
        self.policy(plan.policy())
    }

    /// Enables the event trace (off by default; it grows with the run).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables batched stepping (off by default): one [`Sim::step`] drains
    /// every consecutively queued event that targets the same node at the
    /// same virtual time through the engine's `*_buffered` entry points,
    /// sealing (persist + flush) once per batch instead of once per event.
    ///
    /// Event processing order, metrics, traces, and outputs are *identical*
    /// to unbatched runs — a batch only ever coalesces events that would
    /// have been popped back-to-back anyway — so runs stay byte-for-byte
    /// deterministic across the two modes; only the dispatch overhead
    /// changes. See `tests/batched_stepping.rs` for the pinned equivalence.
    pub fn batched(mut self, on: bool) -> Self {
        self.batched = on;
        self
    }

    /// Instantiates the simulation, creating each node with `make`.
    ///
    /// `make` receives the node id so Byzantine actors can be placed at
    /// chosen positions (return different implementations behind a `Box`).
    pub fn build<M, O, N>(self, mut make: impl FnMut(NodeId) -> N) -> Sim<M, O>
    where
        M: WireSize + Clone + 'static,
        O: 'static,
        N: Node<Msg = M, Output = O> + 'static,
    {
        self.build_boxed(|id| Box::new(make(id)))
    }

    /// Like [`SimBuilder::build`] but the factory returns boxed nodes,
    /// allowing heterogeneous actor types (honest + Byzantine mixes).
    pub fn build_boxed<M, O>(
        self,
        mut make: impl FnMut(NodeId) -> Box<dyn Node<Msg = M, Output = O>>,
    ) -> Sim<M, O>
    where
        M: WireSize + Clone + 'static,
        O: 'static,
    {
        let n = self.n;
        let engines: Vec<_> =
            (0..n as u16).map(|i| Engine::new(make(NodeId(i)), NodeId(i), n)).collect();
        let mut sim = Sim {
            n,
            engines,
            policy: self.policy,
            rng: StdRng::seed_from_u64(self.seed),
            queue: EventQueue::new(),
            now: Time::ZERO,
            outputs: Vec::new(),
            metrics: Metrics::new(n),
            trace: self.record_trace.then(Vec::new),
            started: false,
            batched: self.batched,
        };
        sim.start();
        sim
    }
}

/// The virtual-time transport: routes sends through the link policy into
/// the global event queue, queues timer firings with their generation tag,
/// and records outputs. One instance is materialized per dispatch, borrowing
/// the simulation's shared state on behalf of the dispatching node.
struct SimTransport<'a, M, O> {
    me: NodeId,
    n: usize,
    now: Time,
    queue: &'a mut EventQueue<M>,
    policy: &'a mut LinkPolicy,
    rng: &'a mut StdRng,
    metrics: &'a mut Metrics,
    trace: Option<&'a mut Vec<TraceEvent<M>>>,
    outputs: &'a mut Vec<OutputRecord<O>>,
}

impl<M: WireSize + Clone, O> SimTransport<'_, M, O> {
    fn route(&mut self, to: NodeId, msg: M) {
        let from = self.me;
        if from == to {
            // Loopback: instantaneous, free, and lossless.
            if let Some(trace) = self.trace.as_deref_mut() {
                trace.push(TraceEvent::Sent { at: self.now, from, to, msg: msg.clone() });
            }
            self.queue.push(self.now, EventKind::Deliver { to, from, msg });
            return;
        }
        let size = msg.wire_size();
        self.metrics.on_send(from, msg.wire_kind(), size);
        if let Some(claim) = msg.audit_claim() {
            self.metrics.on_claim(from, claim);
        }
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.push(TraceEvent::Sent { at: self.now, from, to, msg: msg.clone() });
        }
        let env = RouteEnv { from, to, now: self.now, size };
        match self.policy.route(env, self.rng) {
            Route::DeliverAt(at) => {
                let at = at.max(self.now);
                self.queue.push(at, EventKind::Deliver { to, from, msg });
            }
            Route::Drop => {
                self.metrics.msgs_dropped += 1;
                if let Some(trace) = self.trace.as_deref_mut() {
                    trace.push(TraceEvent::Dropped { at: self.now, from, to });
                }
            }
        }
    }
}

impl<M: WireSize + Clone, O> Transport<M, O> for SimTransport<'_, M, O> {
    fn send(&mut self, dest: Dest, msg: M) {
        match dest {
            Dest::All => {
                // One clone per recipient, but protocol messages keep their
                // bulk payloads behind `Arc` (a multi-shot proposal's tx
                // batch, a TCP frame's bytes), so each clone is a
                // refcount bump over one shared buffer — never a per-
                // recipient copy of the payload itself.
                for to in 0..self.n as u16 {
                    self.route(NodeId(to), msg.clone());
                }
            }
            Dest::Node(to) => self.route(to, msg),
        }
    }

    fn arm_timer(&mut self, id: TimerId, generation: u64, after: u64) {
        self.queue.push(self.now + after, EventKind::Timer { node: self.me, id, generation });
    }

    fn deliver_output(&mut self, out: O) {
        self.outputs.push(OutputRecord { node: self.me, time: self.now, output: out });
    }
}

/// A running simulation over `n` protocol state machines, each wrapped in
/// a [`tetrabft_engine::Engine`].
///
/// Drive it with [`Sim::step`], [`Sim::run_until`], or
/// [`Sim::run_until_quiet`]; inspect results via [`Sim::outputs`],
/// [`Sim::metrics`], and [`Sim::trace`].
pub struct Sim<M, O> {
    n: usize,
    engines: Vec<Engine<Box<dyn Node<Msg = M, Output = O>>>>,
    policy: LinkPolicy,
    rng: StdRng,
    queue: EventQueue<M>,
    now: Time,
    outputs: Vec<OutputRecord<O>>,
    metrics: Metrics,
    trace: Option<Vec<TraceEvent<M>>>,
    started: bool,
    batched: bool,
}

/// Splits a `Sim`'s fields into the dispatching node's engine plus a
/// `SimTransport` borrowing everything else — a macro because a `&mut
/// self` helper method could not hand out the engine and the transport's
/// disjoint field borrows at once.
macro_rules! engine_and_transport {
    ($sim:expr, $node:expr) => {{
        let transport = SimTransport {
            me: $node,
            n: $sim.n,
            now: $sim.now,
            queue: &mut $sim.queue,
            policy: &mut $sim.policy,
            rng: &mut $sim.rng,
            metrics: &mut $sim.metrics,
            trace: $sim.trace.as_mut(),
            outputs: &mut $sim.outputs,
        };
        (&mut $sim.engines[$node.index()], transport)
    }};
}

impl<M: WireSize + Clone, O> Sim<M, O> {
    fn start(&mut self) {
        assert!(!self.started);
        self.started = true;
        for i in 0..self.n {
            self.metrics.events_processed += 1;
            let (engine, mut transport) = engine_and_transport!(self, NodeId(i as u16));
            engine.start(self.now, &mut transport);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All outputs produced so far, in emission order.
    pub fn outputs(&self) -> &[OutputRecord<O>] {
        &self.outputs
    }

    /// Communication metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events still queued (messages in flight plus armed timers).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Virtual time of the earliest queued event, if any — what the next
    /// [`Sim::step`] would advance to. Lets embedders (the sharded runner)
    /// interleave several simulations deterministically.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[TraceEvent<M>]> {
        self.trace.as_deref()
    }

    /// Mutable access to a node, for test inspection with downcasting done
    /// by the caller's concrete factory (prefer outputs/metrics in tests).
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<Msg = M, Output = O> {
        &mut **self.engines[id.index()].node_mut()
    }

    /// Processes one queued event — or, in batched mode
    /// ([`SimBuilder::batched`]), one *batch*: the popped event plus every
    /// consecutively queued event for the same node at the same time.
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if self.batched {
            self.step_batched()
        } else {
            self.step_single()
        }
    }

    fn step_single(&mut self) -> bool {
        let Some(event) = self.queue.pop() else { return false };
        debug_assert!(event.at >= self.now, "time must be monotone");
        self.now = event.at;
        match event.kind {
            EventKind::Deliver { to, from, msg } => {
                if from != to {
                    self.metrics.on_deliver(to, msg.wire_size());
                }
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Delivered { at: self.now, from, to, msg: msg.clone() });
                }
                self.metrics.events_processed += 1;
                let (engine, mut transport) = engine_and_transport!(self, to);
                engine.on_deliver(from, msg, self.now, &mut transport);
            }
            EventKind::Timer { node, id, generation } => {
                // The engine filters stale generations; at most one queued
                // event can carry the current one, so no removal is needed.
                let (engine, mut transport) = engine_and_transport!(self, node);
                if engine.on_timer(id, generation, self.now, &mut transport) {
                    self.metrics.events_processed += 1;
                }
            }
        }
        true
    }

    /// Batched stepping: the engine and transport are materialized once,
    /// then every consecutively queued event for the same `(time, node)`
    /// key is driven through the engine's `*_buffered` entry points with a
    /// single persist/flush seal at the end. Coalescing only ever takes the
    /// event the unbatched loop would pop next, so per-event bookkeeping,
    /// dispatch order, and therefore entire runs are identical to
    /// [`Sim::step_single`] — the batch saves only the per-event seal.
    fn step_batched(&mut self) -> bool {
        let Some(event) = self.queue.pop() else { return false };
        debug_assert!(event.at >= self.now, "time must be monotone");
        self.now = event.at;
        let at = event.at;
        let target = match &event.kind {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
        };
        let (engine, mut transport) = engine_and_transport!(self, target);
        let mut dispatched = false;
        let mut next = Some(event);
        loop {
            let event = match next.take() {
                Some(event) => event,
                // An event dispatched above may have pushed follow-ups (a
                // loopback delivery lands at `at` for `target`); peeking
                // after each dispatch keeps the pop order exactly the
                // unbatched one, extending the batch only while the
                // globally next event stays on this node at this instant.
                None => match transport.queue.peek_target() {
                    Some((t, node)) if t == at && node == target => {
                        transport.queue.pop().expect("peeked event must pop")
                    }
                    _ => break,
                },
            };
            match event.kind {
                EventKind::Deliver { to, from, msg } => {
                    if from != to {
                        transport.metrics.on_deliver(to, msg.wire_size());
                    }
                    if let Some(trace) = transport.trace.as_deref_mut() {
                        trace.push(TraceEvent::Delivered { at, from, to, msg: msg.clone() });
                    }
                    transport.metrics.events_processed += 1;
                    engine.on_deliver_buffered(from, msg, at, &mut transport);
                    dispatched = true;
                }
                EventKind::Timer { id, generation, .. } => {
                    if engine.on_timer_buffered(id, generation, at, &mut transport) {
                        transport.metrics.events_processed += 1;
                        dispatched = true;
                    }
                }
            }
        }
        if dispatched {
            engine.finish_batch(&mut transport);
        }
        true
    }

    /// Runs until the queue is empty or virtual time would exceed `horizon`.
    pub fn run_until(&mut self, horizon: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
    }

    /// Runs until the event queue drains, with a hard cap of `max_events`
    /// processed events (protection against livelock in protocol bugs).
    /// Returns `true` if the queue drained.
    pub fn run_until_quiet(&mut self, max_events: u64) -> bool {
        let mut processed = 0;
        while processed < max_events {
            if !self.step() {
                return true;
            }
            processed += 1;
        }
        self.queue.peek_time().is_none()
    }

    /// Runs until at least `count` outputs exist or the queue drains or
    /// `max_events` is hit. Returns `true` if the output target was reached.
    pub fn run_until_outputs(&mut self, count: usize, max_events: u64) -> bool {
        let mut processed = 0;
        while self.outputs.len() < count && processed < max_events {
            if !self.step() {
                break;
            }
            processed += 1;
        }
        self.outputs.len() >= count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::{FnNode, SilentNode};
    use crate::policy::LinkPolicy;
    use tetrabft_engine::Input;

    #[derive(Clone, Debug, PartialEq)]
    struct Msg(u64);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn start_is_delivered_to_every_node() {
        let mut sim = SimBuilder::new(3).build(|_| {
            FnNode::<Msg, (), _>::new(|input, ctx| {
                if matches!(input, Input::Start) {
                    ctx.output(());
                }
            })
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.outputs().len(), 3);
    }

    #[test]
    fn broadcast_reaches_all_including_self() {
        let mut sim = SimBuilder::new(4).build(|id| {
            FnNode::<Msg, (NodeId, NodeId), _>::new(move |input, ctx| match input {
                Input::Start if id == NodeId(0) => ctx.broadcast(Msg(1)),
                Input::Deliver { from, .. } => ctx.output((from, ctx.me())),
                _ => {}
            })
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.outputs().len(), 4);
        // Loopback delivered at t=0; network copies at t=1.
        let self_delivery = sim.outputs().iter().find(|o| o.node == NodeId(0)).unwrap();
        assert_eq!(self_delivery.time, Time(0));
        for o in sim.outputs().iter().filter(|o| o.node != NodeId(0)) {
            assert_eq!(o.time, Time(1));
        }
        // Loopback is free: 3 network messages only.
        assert_eq!(sim.metrics().total_msgs_sent(), 3);
        assert_eq!(sim.metrics().total_bytes_sent(), 24);
    }

    #[test]
    fn timers_fire_once_and_replacement_works() {
        let mut sim = SimBuilder::new(1).build(|_| {
            FnNode::<Msg, u64, _>::new(|input, ctx| match input {
                Input::Start => {
                    ctx.set_timer(TimerId(7), 10);
                    ctx.set_timer(TimerId(7), 3); // replaces the first arming
                }
                Input::Timer { id } => ctx.output(id.0 + ctx.now().0),
                _ => {}
            })
        });
        sim.run_until_quiet(100);
        assert_eq!(sim.outputs().len(), 1, "replaced timer must fire once");
        assert_eq!(sim.outputs()[0].time, Time(3));
    }

    #[test]
    fn rearming_after_a_fire_cannot_resurrect_an_orphaned_event() {
        // Arm (gen 1, due t=100), replace (gen 2, due t=10), fire at t=10,
        // re-arm from the handler. The orphaned gen-1 event still queued for
        // t=100 must stay dead; only the re-armed timer (t=110) may fire.
        let mut sim = SimBuilder::new(1).build(|_| {
            FnNode::<Msg, u64, _>::new(|input, ctx| match input {
                Input::Start => {
                    ctx.set_timer(TimerId(7), 100);
                    ctx.set_timer(TimerId(7), 10);
                }
                Input::Timer { .. } if ctx.now() == Time(10) => {
                    ctx.output(ctx.now().0);
                    ctx.set_timer(TimerId(7), 100);
                }
                Input::Timer { .. } => ctx.output(ctx.now().0),
                _ => {}
            })
        });
        sim.run_until_quiet(100);
        let times: Vec<u64> = sim.outputs().iter().map(|o| o.output).collect();
        assert_eq!(times, vec![10, 110], "orphaned t=100 firing must not resurrect");
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = SimBuilder::new(1).build(|_| {
            FnNode::<Msg, (), _>::new(|input, ctx| match input {
                Input::Start => {
                    ctx.set_timer(TimerId(1), 5);
                    ctx.cancel_timer(TimerId(1));
                }
                Input::Timer { .. } => ctx.output(()),
                _ => {}
            })
        });
        sim.run_until_quiet(100);
        assert!(sim.outputs().is_empty());
    }

    #[test]
    fn silent_node_does_nothing() {
        let mut sim = SimBuilder::new(2).build_boxed(|id| {
            if id == NodeId(0) {
                Box::new(FnNode::<Msg, (), _>::new(|input, ctx| {
                    if matches!(input, Input::Start) {
                        ctx.broadcast(Msg(9));
                    }
                }))
            } else {
                Box::new(SilentNode::new())
            }
        });
        sim.run_until_quiet(100);
        assert!(sim.outputs().is_empty());
        assert_eq!(sim.metrics().node(NodeId(1)).msgs_sent, 0);
        assert_eq!(sim.metrics().node(NodeId(1)).msgs_received, 1);
    }

    #[test]
    fn drops_are_counted() {
        let mut sim =
            SimBuilder::new(2).policy(LinkPolicy::partial_synchrony(Time(100), 5, 1)).build(|id| {
                FnNode::<Msg, (), _>::new(move |input, ctx| {
                    if matches!(input, Input::Start) && id == NodeId(0) {
                        ctx.send(NodeId(1), Msg(1));
                    }
                })
            });
        sim.run_until_quiet(100);
        assert_eq!(sim.metrics().msgs_dropped, 1);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let mut sim =
                SimBuilder::new(3).seed(seed).policy(LinkPolicy::jittered(1, 7)).build(|id| {
                    FnNode::<Msg, (NodeId, u64), _>::new(move |input, ctx| match input {
                        Input::Start if id == NodeId(0) => ctx.broadcast(Msg(0)),
                        Input::Deliver { msg: Msg(k), .. } if k < 3 => ctx.broadcast(Msg(k + 1)),
                        Input::Deliver { msg: Msg(k), .. } => ctx.output((ctx.me(), k)),
                        _ => {}
                    })
                });
            sim.run_until_quiet(10_000);
            (sim.outputs().to_vec(), sim.metrics().total_bytes_sent())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, 0);
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut sim = SimBuilder::new(2).record_trace(true).build(|id| {
            FnNode::<Msg, (), _>::new(move |input, ctx| {
                if matches!(input, Input::Start) && id == NodeId(0) {
                    ctx.send(NodeId(1), Msg(5));
                }
            })
        });
        sim.run_until_quiet(100);
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert!(matches!(trace[0], TraceEvent::Sent { .. }));
        assert!(matches!(trace[1], TraceEvent::Delivered { .. }));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = SimBuilder::new(1).build(|_| {
            FnNode::<Msg, u64, _>::new(|input, ctx| match input {
                Input::Start => ctx.set_timer(TimerId(0), 10),
                Input::Timer { .. } => {
                    ctx.output(ctx.now().0);
                    ctx.set_timer(TimerId(0), 10);
                }
                _ => {}
            })
        });
        sim.run_until(Time(35));
        assert_eq!(sim.outputs().len(), 3); // t=10, 20, 30
        assert_eq!(sim.now(), Time(30));
    }
}
