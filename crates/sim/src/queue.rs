//! Internal event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tetrabft_types::NodeId;

use tetrabft_engine::Time;
use tetrabft_engine::TimerId;

pub(crate) enum EventKind<M> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, generation: u64 },
}

pub(crate) struct Event<M> {
    pub at: Time,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then the
        // first-enqueued) event pops first. Determinism depends on `seq`.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub fn push(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Time and target node of the next event — what batched stepping uses
    /// to decide whether the following event extends the current batch.
    pub fn peek_target(&self) -> Option<(Time, NodeId)> {
        self.heap.peek().map(|e| {
            let node = match &e.kind {
                EventKind::Deliver { to, .. } => *to,
                EventKind::Timer { node, .. } => *node,
            };
            (e.at, node)
        })
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(Time(5), EventKind::Deliver { to: NodeId(0), from: NodeId(1), msg: "late" });
        q.push(Time(1), EventKind::Deliver { to: NodeId(0), from: NodeId(1), msg: "a" });
        q.push(Time(1), EventKind::Deliver { to: NodeId(0), from: NodeId(1), msg: "b" });
        let order: Vec<&str> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec!["a", "b", "late"]);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time(9), EventKind::Timer { node: NodeId(0), id: TimerId(0), generation: 0 });
        q.push(Time(2), EventKind::Timer { node: NodeId(0), id: TimerId(1), generation: 0 });
        assert_eq!(q.peek_time(), Some(Time(2)));
        assert_eq!(q.len(), 2);
    }
}
