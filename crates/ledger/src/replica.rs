//! The replica-side fold: finalized consensus output → ledger state, with
//! the cross-replica root check that turns silent execution divergence
//! into a typed error.

use std::fmt;

use tetrabft_multishot::{Finalized, FinalizedMerge, ShardSpec};

use crate::account::AccountId;
use crate::ledger::{BlockReceipt, Ledger};
use crate::state::StateRoot;

/// Two replicas disagree on the state after a block: deterministic
/// execution of the same finalized chain can only diverge if one of them
/// executed something else (a forged block, a buggy or malicious
/// executor), and the chained roots pin the *first* block where it
/// happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRootMismatch {
    /// The first global slot whose roots disagree.
    pub global_slot: u64,
    /// This replica's root after that block.
    pub ours: StateRoot,
    /// The other replica's root after that block.
    pub theirs: StateRoot,
}

impl fmt::Display for StateRootMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state root mismatch at global slot {}: ours {}, theirs {}",
            self.global_slot, self.ours, self.theirs
        )
    }
}

impl std::error::Error for StateRootMismatch {}

/// A replica's ledger fold: feeds per-shard [`Finalized`] events through a
/// [`FinalizedMerge`] into a [`Ledger`], keeping the per-block root
/// history for cross-checks.
///
/// The same type serves every runtime: the single-instance sim and TCP
/// cluster use `k = 1` ([`LedgerReplica::new`]), sharded runs feed each
/// shard's stream with its shard index ([`LedgerReplica::sharded`]) and
/// the merge reassembles the global order before anything executes — so
/// roots are comparable across all of them by construction.
///
/// # Examples
///
/// ```
/// use tetrabft_ledger::{AccountId, LedgerReplica};
/// use tetrabft_multishot::{Block, Finalized, GENESIS_HASH};
/// use tetrabft_types::Slot;
///
/// let genesis = [(AccountId(1), 100)];
/// let mut a = LedgerReplica::new(genesis);
/// let mut b = LedgerReplica::new(genesis);
/// let block = Block::new(Slot(1), GENESIS_HASH, vec![]);
/// let fin = Finalized { slot: Slot(1), hash: block.hash(), block };
/// a.push(0, &fin);
/// b.push(0, &fin);
/// assert_eq!(a.root(), b.root());
/// assert!(a.cross_check(&b).is_ok());
/// ```
#[derive(Debug)]
pub struct LedgerReplica {
    ledger: Ledger,
    merge: FinalizedMerge,
    /// Receipt per executed block, indexed by `global_slot - 1` — the root
    /// history [`LedgerReplica::cross_check`] walks.
    receipts: Vec<BlockReceipt>,
}

impl LedgerReplica {
    /// A single-stream replica (sim or TCP cluster: one consensus
    /// instance, shard index 0).
    pub fn new(genesis: impl IntoIterator<Item = (AccountId, u64)>) -> Self {
        Self::sharded(ShardSpec::new(1), genesis)
    }

    /// A replica merging `spec.k()` shard streams into the global order
    /// before executing.
    pub fn sharded(spec: ShardSpec, genesis: impl IntoIterator<Item = (AccountId, u64)>) -> Self {
        LedgerReplica {
            ledger: Ledger::new(genesis),
            merge: FinalizedMerge::new(spec),
            receipts: Vec::new(),
        }
    }

    /// Feeds one shard-local finalization and executes every block that
    /// became globally contiguous, returning how many blocks ran. The
    /// returned count indexes into [`LedgerReplica::receipts`] if the
    /// caller wants the details.
    pub fn push(&mut self, shard: usize, fin: &Finalized) -> usize {
        self.merge.push(shard, fin.clone());
        let mut ran = 0;
        for g in self.merge.by_ref() {
            let receipt = self.ledger.apply_block(g.global_slot, &g.fin.block.txs);
            self.receipts.push(receipt);
            ran += 1;
        }
        ran
    }

    /// Compares per-block roots with another replica over their common
    /// prefix.
    ///
    /// # Errors
    ///
    /// Returns the [`StateRootMismatch`] naming the *first* divergent
    /// block. Chained roots make divergence sticky, so the first mismatch
    /// is where execution actually forked.
    pub fn cross_check(&self, other: &LedgerReplica) -> Result<(), StateRootMismatch> {
        let common = self.receipts.len().min(other.receipts.len());
        for i in 0..common {
            let (ours, theirs) = (self.receipts[i].root, other.receipts[i].root);
            if ours != theirs {
                return Err(StateRootMismatch { global_slot: self.receipts[i].slot, ours, theirs });
            }
        }
        Ok(())
    }

    /// The executed ledger state.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Receipts of every executed block, in global slot order.
    pub fn receipts(&self) -> &[BlockReceipt] {
        &self.receipts
    }

    /// The chained root after the last executed block (the genesis root if
    /// none ran yet).
    pub fn root(&self) -> StateRoot {
        self.ledger.root()
    }

    /// Number of globally contiguous blocks executed so far.
    pub fn height(&self) -> u64 {
        self.ledger.height()
    }

    /// The next global slot the merge is waiting for — a gap here with
    /// shard outputs pending means that shard's stream is behind.
    pub fn next_global_slot(&self) -> u64 {
        self.merge.next_global_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_multishot::{Block, Transaction, GENESIS_HASH};
    use tetrabft_types::Slot;

    use crate::txn::Transfer;

    fn fin(slot: u64, parent: tetrabft_multishot::BlockHash, txs: Vec<Vec<u8>>) -> Finalized {
        let block = Block::new(Slot(slot), parent, txs);
        Finalized { slot: Slot(slot), hash: block.hash(), block }
    }

    fn pay(from: u64, to: u64, amount: u64, nonce: u64) -> Vec<u8> {
        Transfer { from: AccountId(from), to: AccountId(to), amount, nonce }.canonical_bytes()
    }

    #[test]
    fn sharded_merge_executes_in_global_order() {
        // k=2: shard 0 owns global slots 1,3; shard 1 owns 2,4. The
        // transfer chain only balances if executed in global order.
        let spec = ShardSpec::new(2);
        let genesis = [(AccountId(1), 100)];
        let mut replica = LedgerReplica::sharded(spec, genesis);
        let s0b1 = fin(1, GENESIS_HASH, vec![pay(1, 2, 100, 0)]); // global 1
        let s1b1 = fin(1, GENESIS_HASH, vec![pay(2, 3, 100, 0)]); // global 2
                                                                  // Push out of order: shard 1 first. Nothing can run yet.
        assert_eq!(replica.push(1, &s1b1), 0);
        assert_eq!(replica.next_global_slot(), 1);
        // Shard 0 arrives: both blocks become contiguous and run in order.
        assert_eq!(replica.push(0, &s0b1), 2);
        assert_eq!(replica.height(), 2);
        assert_eq!(replica.ledger().account(AccountId(3)).balance, 100);
        assert!(replica.receipts().iter().all(|r| r.rejected.is_empty()));
    }

    #[test]
    fn cross_check_names_the_first_forged_block() {
        let genesis = [(AccountId(1), 100), (AccountId(2), 100)];
        let honest_blocks = [
            fin(1, GENESIS_HASH, vec![pay(1, 2, 10, 0)]),
            fin(2, GENESIS_HASH, vec![pay(2, 1, 5, 0)]),
            fin(3, GENESIS_HASH, vec![pay(1, 2, 1, 1)]),
        ];
        let mut honest = LedgerReplica::new(genesis);
        let mut forged = LedgerReplica::new(genesis);
        for (i, block) in honest_blocks.iter().enumerate() {
            honest.push(0, block);
            if i == 1 {
                // The divergent replica executes a forged slot-2 block.
                forged.push(0, &fin(2, GENESIS_HASH, vec![pay(2, 1, 99, 0)]));
            } else {
                forged.push(0, block);
            }
        }
        let err = honest.cross_check(&forged).unwrap_err();
        assert_eq!(err.global_slot, 2, "the first divergent block is named");
        assert_ne!(err.ours, err.theirs);
        // Symmetric view agrees on the slot.
        assert_eq!(forged.cross_check(&honest).unwrap_err().global_slot, 2);
        // And the error says where.
        assert!(err.to_string().contains("global slot 2"));
    }

    #[test]
    fn identical_replicas_stay_in_agreement() {
        let genesis = [(AccountId(1), 1_000)];
        let mut a = LedgerReplica::new(genesis);
        let mut b = LedgerReplica::new(genesis);
        for slot in 1..=10u64 {
            let block = fin(slot, GENESIS_HASH, vec![pay(1, 2, 1, slot - 1)]);
            a.push(0, &block);
            b.push(0, &block);
        }
        assert!(a.cross_check(&b).is_ok());
        assert_eq!(a.root(), b.root());
    }
}
