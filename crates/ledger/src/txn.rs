//! The transfer transaction: canonical wire form, typed submission, and
//! the structural admission check.

use tetrabft_multishot::{ShardSpec, SubmitError, Transaction, Tx};
use tetrabft_wire::{Reader, Wire, WireError, Writer};

use crate::account::AccountId;

/// Version tag leading every canonical transfer encoding, so the payload
/// space stays extensible (a later tx kind claims the next tag).
const TRANSFER_TAG: u8 = 1;

/// A signed-shape transfer: move `amount` from `from` to `to`, sequenced
/// by `from`'s `nonce`.
///
/// "Signed-shape" means the struct carries everything a signature would
/// cover and the nonce that makes replays detectable; actual signature
/// bytes are out of scope for the consensus reproduction (the threat model
/// here is Byzantine *replicas*, not forged client traffic).
///
/// The canonical encoding is the v2 wire idiom: a version tag then strict
/// LEB128 varints, so every field is minimal-length and
/// [`Wire::from_bytes`] rejects overlong or trailing bytes — two distinct
/// byte strings never decode to the same transfer.
///
/// # Examples
///
/// ```
/// use tetrabft_ledger::{AccountId, Transfer};
/// use tetrabft_multishot::Transaction;
/// use tetrabft_wire::Wire;
///
/// let t = Transfer { from: AccountId(1), to: AccountId(2), amount: 50, nonce: 0 };
/// let bytes = t.canonical_bytes();
/// assert_eq!(Transfer::from_bytes(&bytes)?, t);
/// assert_eq!(t.tx_id(), Transfer::from_bytes(&bytes)?.tx_id());
/// # Ok::<(), tetrabft_wire::WireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Paying account.
    pub from: AccountId,
    /// Receiving account.
    pub to: AccountId,
    /// Amount moved.
    pub amount: u64,
    /// `from`'s sequence number for this transfer (must equal the
    /// account's current nonce at execution).
    pub nonce: u64,
}

impl Wire for Transfer {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TRANSFER_TAG);
        w.put_varint(self.from.0);
        w.put_varint(self.to.0);
        w.put_varint(self.amount);
        w.put_varint(self.nonce);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        if tag != TRANSFER_TAG {
            return Err(WireError::InvalidTag { what: "Transfer", tag });
        }
        Ok(Transfer {
            from: AccountId(r.get_varint_u64()?),
            to: AccountId(r.get_varint_u64()?),
            amount: r.get_varint_u64()?,
            nonce: r.get_varint_u64()?,
        })
    }
}

impl Transaction for Transfer {
    fn encode_canonical(&self, w: &mut Writer) {
        self.encode(w);
    }
}

/// The ledger's structural admission hook for
/// [`Mempool::with_admission`] / [`MultiShotNode::with_admission`]: refuses
/// at the door everything about a transfer that is checkable without state.
///
/// Non-canonical bytes are [`SubmitError::Malformed`]; a well-formed but
/// degenerate transfer (zero amount, paying itself) is
/// [`SubmitError::Rejected`]. Stateful rules — nonce sequencing, funds —
/// are deliberately *not* checked here: the mempool has no authoritative
/// state, so those reject deterministically at execution instead
/// ([`crate::ExecError`]).
///
/// [`Mempool::with_admission`]: tetrabft_multishot::Mempool::with_admission
/// [`MultiShotNode::with_admission`]: tetrabft_multishot::MultiShotNode::with_admission
///
/// # Examples
///
/// ```
/// use tetrabft_ledger::{transfer_admission, AccountId, Transfer};
/// use tetrabft_multishot::{Mempool, SubmitError, Tx};
///
/// let mut pool = Mempool::new(16, 64).with_admission(transfer_admission);
/// let ok = Transfer { from: AccountId(1), to: AccountId(2), amount: 5, nonce: 0 };
/// pool.submit(Tx::typed(&ok))?;
/// assert!(matches!(
///     pool.submit(b"not a transfer".to_vec()),
///     Err(SubmitError::Malformed { .. })
/// ));
/// # Ok::<(), SubmitError>(())
/// ```
pub fn transfer_admission(tx: &Tx) -> Result<(), SubmitError> {
    let t = Transfer::from_bytes(tx.bytes())
        .map_err(|_| SubmitError::Malformed { reason: "not a canonical transfer encoding" })?;
    if t.amount == 0 {
        return Err(SubmitError::Rejected { reason: "zero-amount transfer" });
    }
    if t.from == t.to {
        return Err(SubmitError::Rejected { reason: "self-paying transfer" });
    }
    Ok(())
}

/// Routes an account to its owning shard: FNV-1a over the account id,
/// mod `k`.
///
/// Sharded ledgers route a transfer by its *paying* account — not by
/// payload hash ([`ShardSpec::route_tx`]) — so all of one account's
/// transfers land on one shard and its nonce sequencing survives the
/// round-robin slot partition (shards finalize independently; only the
/// merged global order is total).
pub fn shard_of_account(spec: &ShardSpec, id: AccountId) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.0.to_be_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % spec.k() as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_multishot::TxId;

    fn t(from: u64, to: u64, amount: u64, nonce: u64) -> Transfer {
        Transfer { from: AccountId(from), to: AccountId(to), amount, nonce }
    }

    #[test]
    fn canonical_roundtrip_and_stable_id() {
        let a = t(7, 9, 1_000_000, 3);
        let bytes = a.canonical_bytes();
        let back = Transfer::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(a.tx_id(), TxId::of(&bytes));
        assert_ne!(a.tx_id(), t(7, 9, 1_000_000, 4).tx_id(), "nonce is identity-bearing");
    }

    #[test]
    fn decode_rejects_trailing_and_wrong_tag() {
        let mut bytes = t(1, 2, 3, 0).canonical_bytes();
        bytes.push(0);
        assert!(matches!(
            Transfer::from_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
        assert!(matches!(
            Transfer::from_bytes(&[9, 1, 2, 3, 0]),
            Err(WireError::InvalidTag { what: "Transfer", tag: 9 })
        ));
    }

    #[test]
    fn admission_vetoes_exactly_the_static_failures() {
        let ok = Tx::typed(&t(1, 2, 5, 0));
        assert_eq!(transfer_admission(&ok), Ok(()));
        // Future nonce and overdraft-sized amounts are stateful: admitted
        // here, rejected at execution.
        assert_eq!(transfer_admission(&Tx::typed(&t(1, 2, u64::MAX, 999))), Ok(()));
        assert!(matches!(
            transfer_admission(&Tx::raw(b"garbage".to_vec())),
            Err(SubmitError::Malformed { .. })
        ));
        assert!(matches!(
            transfer_admission(&Tx::typed(&t(1, 2, 0, 0))),
            Err(SubmitError::Rejected { reason: "zero-amount transfer" })
        ));
        assert!(matches!(
            transfer_admission(&Tx::typed(&t(1, 1, 5, 0))),
            Err(SubmitError::Rejected { reason: "self-paying transfer" })
        ));
    }

    #[test]
    fn account_routing_is_stable_in_range_and_nonce_blind() {
        let spec = ShardSpec::new(3);
        for id in 0..64u64 {
            let shard = shard_of_account(&spec, AccountId(id));
            assert!(shard < 3);
            assert_eq!(shard, shard_of_account(&spec, AccountId(id)));
        }
        // The same account's transfers route identically whatever their
        // nonce/amount — that is the whole point vs payload routing.
        let spec = ShardSpec::new(4);
        let a = shard_of_account(&spec, AccountId(42));
        for nonce in 0..8 {
            let tx = t(42, 7, 100 + nonce, nonce);
            let _ = tx; // routing never looks at the payload
            assert_eq!(shard_of_account(&spec, AccountId(42)), a);
        }
    }
}
