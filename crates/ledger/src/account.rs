//! Accounts: the unit of ledger state.

use std::fmt;

/// An account's identity: an opaque 64-bit key (a real deployment would
/// derive it from a public key; the digest space is what matters here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(pub u64);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct:{:x}", self.0)
    }
}

/// One account's state: a balance and the nonce of its *next* transfer.
///
/// An account that has never been touched is indistinguishable from
/// `Account::default()` — zero balance, zero nonce — so the ledger needs no
/// explicit account-creation transaction: the first credit materializes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Account {
    /// Spendable funds.
    pub balance: u64,
    /// Sequence number the account's next outgoing transfer must carry —
    /// starts at 0, incremented by every applied transfer. Replays (and
    /// out-of-order submissions) are rejected deterministically at
    /// execution.
    pub nonce: u64,
}

impl Account {
    /// An account holding `balance` with no transfers sent yet.
    pub fn with_balance(balance: u64) -> Self {
        Account { balance, nonce: 0 }
    }
}
