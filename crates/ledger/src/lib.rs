//! **The ledger on top of the chain**: accounts, transfers, deterministic
//! execution, and per-block state roots.
//!
//! Consensus (Multi-shot TetraBFT) totally orders opaque byte payloads;
//! this crate gives those payloads semantics. Clients submit typed
//! [`Transfer`]s through the typed transaction surface
//! ([`tetrabft_multishot::Transaction`]); the [`transfer_admission`] hook
//! refuses structurally-invalid payloads at the mempool door; and every
//! replica folds the finalized stream — single-instance or `k` merged
//! shard streams — through a [`LedgerReplica`] into an account state whose
//! per-block [`StateRoot`] is chained and canonical. Replicas cross-check
//! roots: deterministic execution means equal streams give equal roots, so
//! any divergence (a forged block, a corrupted executor) surfaces as a
//! typed [`StateRootMismatch`] naming the first offending block instead of
//! passing silently.
//!
//! The account map is persistent (imhamt-style copy-on-write trie,
//! [`AccountMap`]): snapshots are O(1) clones and the root digest is
//! cached per node, so per-block commitments cost O(txs · depth), not
//! O(accounts).
//!
//! # Examples
//!
//! Two replicas executing the same finalized blocks agree on every root:
//!
//! ```
//! use tetrabft_ledger::{AccountId, LedgerReplica, Transfer};
//! use tetrabft_multishot::{Block, Finalized, Transaction, GENESIS_HASH};
//! use tetrabft_types::Slot;
//!
//! let genesis = [(AccountId(1), 100)];
//! let pay = Transfer { from: AccountId(1), to: AccountId(2), amount: 40, nonce: 0 };
//! let block = Block::new(Slot(1), GENESIS_HASH, vec![pay.canonical_bytes()]);
//! let fin = Finalized { slot: Slot(1), hash: block.hash(), block };
//!
//! let mut a = LedgerReplica::new(genesis);
//! let mut b = LedgerReplica::new(genesis);
//! a.push(0, &fin);
//! b.push(0, &fin);
//! assert_eq!(a.root(), b.root());
//! assert_eq!(a.ledger().account(AccountId(2)).balance, 40);
//! assert!(a.cross_check(&b).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod ledger;
mod replica;
mod state;
mod txn;

pub use account::{Account, AccountId};
pub use ledger::{BlockReceipt, ExecError, Ledger};
pub use replica::{LedgerReplica, StateRootMismatch};
pub use state::{AccountMap, StateRoot};
pub use txn::{shard_of_account, transfer_admission, Transfer};
