//! The persistent, structurally-shared account map and the hashed state
//! roots computed from it.
//!
//! [`AccountMap`] is a 16-ary radix trie over the account id's nibbles
//! (most-significant first), in the imhamt/HAMT copy-on-write style: every
//! node is immutable behind an [`Arc`], an insert path-copies the O(16)
//! nodes from root to leaf and shares everything else, and a snapshot is a
//! `Clone` — one atomic refcount bump, however many accounts exist. Each
//! node carries its subtree digest computed once at construction, so the
//! map's [`AccountMap::root_hash`] is O(1) to read and — because the trie's
//! shape is a pure function of the key set — canonical: two maps holding
//! the same accounts hash identically regardless of insertion order.

use std::fmt;
use std::sync::Arc;

use crate::account::{Account, AccountId};

/// Nibbles in a 64-bit key: the trie's maximum depth.
const MAX_DEPTH: usize = 16;

/// FNV-1a step, the repository's digest primitive.
#[inline]
fn fnv(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
}

#[inline]
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_be_bytes() {
        h = fnv(h, b);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Domain tags keep a leaf digest from colliding with a branch digest over
/// the same bytes.
const TAG_LEAF: u8 = 1;
const TAG_BRANCH: u8 = 2;

/// Nibble of `key` at trie depth `depth` (most-significant first, so the
/// trie iterates in ascending key order).
#[inline]
fn nibble(key: u64, depth: usize) -> usize {
    ((key >> (60 - 4 * depth)) & 0xF) as usize
}

#[derive(Debug)]
enum TrieNode {
    /// A key whose path is unique from this depth down sits in a leaf
    /// immediately — the trie's depth tracks key-prefix density, not key
    /// width.
    Leaf {
        key: u64,
        account: Account,
        hash: u64,
    },
    Branch {
        children: [Option<Arc<TrieNode>>; 16],
        hash: u64,
    },
}

impl TrieNode {
    fn hash(&self) -> u64 {
        match self {
            TrieNode::Leaf { hash, .. } | TrieNode::Branch { hash, .. } => *hash,
        }
    }

    fn leaf(key: u64, account: Account) -> Arc<TrieNode> {
        let mut h = fnv(FNV_OFFSET, TAG_LEAF);
        h = fnv_u64(h, key);
        h = fnv_u64(h, account.balance);
        h = fnv_u64(h, account.nonce);
        Arc::new(TrieNode::Leaf { key, account, hash: h })
    }

    fn branch(children: [Option<Arc<TrieNode>>; 16]) -> Arc<TrieNode> {
        let mut h = fnv(FNV_OFFSET, TAG_BRANCH);
        for (i, child) in children.iter().enumerate() {
            if let Some(c) = child {
                h = fnv(h, i as u8);
                h = fnv_u64(h, c.hash());
            }
        }
        Arc::new(TrieNode::Branch { children, hash: h })
    }
}

/// A persistent map from [`AccountId`] to [`Account`] with an O(1)
/// canonical digest and O(1) snapshots.
///
/// # Examples
///
/// ```
/// use tetrabft_ledger::{Account, AccountId, AccountMap};
///
/// let mut live = AccountMap::new();
/// live.insert(AccountId(1), Account::with_balance(100));
/// let snapshot = live.clone(); // O(1): shares the whole trie
/// live.insert(AccountId(2), Account::with_balance(50));
/// assert_eq!(snapshot.len(), 1, "snapshot is unaffected");
/// assert_eq!(live.len(), 2);
///
/// // The digest is canonical: insertion order does not matter.
/// let mut other = AccountMap::new();
/// other.insert(AccountId(2), Account::with_balance(50));
/// other.insert(AccountId(1), Account::with_balance(100));
/// assert_eq!(live.root_hash(), other.root_hash());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccountMap {
    root: Option<Arc<TrieNode>>,
    len: usize,
}

impl AccountMap {
    /// The empty map.
    pub fn new() -> Self {
        AccountMap::default()
    }

    /// Number of accounts present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up one account.
    pub fn get(&self, id: AccountId) -> Option<Account> {
        let mut node = self.root.as_deref()?;
        for depth in 0..=MAX_DEPTH {
            match node {
                TrieNode::Leaf { key, account, .. } => {
                    return (*key == id.0).then_some(*account);
                }
                TrieNode::Branch { children, .. } => {
                    debug_assert!(depth < MAX_DEPTH, "branch below last nibble");
                    node = children[nibble(id.0, depth)].as_deref()?;
                }
            }
        }
        None
    }

    /// Inserts or replaces one account, path-copying O(depth) nodes; every
    /// untouched subtree is shared with previous snapshots.
    pub fn insert(&mut self, id: AccountId, account: Account) {
        let (root, added) = match self.root.take() {
            None => (TrieNode::leaf(id.0, account), true),
            Some(node) => Self::insert_at(&node, id.0, account, 0),
        };
        self.root = Some(root);
        if added {
            self.len += 1;
        }
    }

    fn insert_at(
        node: &Arc<TrieNode>,
        key: u64,
        account: Account,
        depth: usize,
    ) -> (Arc<TrieNode>, bool) {
        match node.as_ref() {
            TrieNode::Leaf { key: existing, account: old, .. } => {
                if *existing == key {
                    return (TrieNode::leaf(key, account), false);
                }
                // Two distinct keys collided at this depth: grow branches
                // until their nibbles diverge (keys differ, so they must
                // diverge within MAX_DEPTH).
                let mut d = depth;
                while nibble(*existing, d) == nibble(key, d) {
                    d += 1;
                    debug_assert!(d < MAX_DEPTH, "distinct keys share all nibbles");
                }
                let mut children: [Option<Arc<TrieNode>>; 16] = Default::default();
                children[nibble(*existing, d)] = Some(TrieNode::leaf(*existing, *old));
                children[nibble(key, d)] = Some(TrieNode::leaf(key, account));
                let mut grown = TrieNode::branch(children);
                // Wrap back up to this node's depth.
                for up in (depth..d).rev() {
                    let mut children: [Option<Arc<TrieNode>>; 16] = Default::default();
                    children[nibble(key, up)] = Some(grown);
                    grown = TrieNode::branch(children);
                }
                (grown, true)
            }
            TrieNode::Branch { children, .. } => {
                let idx = nibble(key, depth);
                let (child, added) = match &children[idx] {
                    Some(child) => Self::insert_at(child, key, account, depth + 1),
                    None => (TrieNode::leaf(key, account), true),
                };
                let mut children = children.clone();
                children[idx] = Some(child);
                (TrieNode::branch(children), added)
            }
        }
    }

    /// The canonical digest of the whole account state — O(1): every node
    /// hashed itself at construction.
    pub fn root_hash(&self) -> u64 {
        // The empty map hashes to the bare offset basis, distinct from any
        // tagged node digest.
        self.root.as_ref().map_or(FNV_OFFSET, |n| n.hash())
    }

    /// Sum of every balance, wide enough that it cannot overflow
    /// (2^64 accounts × u64 balances fit in u128) — the conservation
    /// invariant tests check against the genesis supply.
    pub fn total_balance(&self) -> u128 {
        fn walk(node: &TrieNode, sum: &mut u128) {
            match node {
                TrieNode::Leaf { account, .. } => *sum += u128::from(account.balance),
                TrieNode::Branch { children, .. } => {
                    for child in children.iter().flatten() {
                        walk(child, sum);
                    }
                }
            }
        }
        let mut sum = 0;
        if let Some(root) = &self.root {
            walk(root, &mut sum);
        }
        sum
    }

    /// Every `(id, account)` pair in ascending id order (the trie branches
    /// on most-significant nibbles first, so in-order traversal is sorted).
    pub fn entries(&self) -> Vec<(AccountId, Account)> {
        fn walk(node: &TrieNode, out: &mut Vec<(AccountId, Account)>) {
            match node {
                TrieNode::Leaf { key, account, .. } => out.push((AccountId(*key), *account)),
                TrieNode::Branch { children, .. } => {
                    for child in children.iter().flatten() {
                        walk(child, out);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = &self.root {
            walk(root, &mut out);
        }
        out
    }
}

/// The chained per-block state commitment: genesis is a constant, and the
/// root after block `b` is `H(prev_root, slot, accounts_root)`.
///
/// Chaining makes divergence *sticky*: once two replicas disagree on any
/// block's execution, every later root differs too, so a cross-check at
/// any height ≥ the divergence catches it — and walking the per-block root
/// history names the exact offending block
/// ([`crate::LedgerReplica::cross_check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateRoot(pub u64);

impl StateRoot {
    /// The pre-execution root (height 0, no blocks applied); folds the
    /// genesis account digest so two chains with different initial
    /// allocations never share roots.
    pub fn genesis(accounts: &AccountMap) -> Self {
        let mut h = fnv(FNV_OFFSET, TAG_BRANCH);
        h = fnv_u64(h, 0);
        h = fnv_u64(h, accounts.root_hash());
        StateRoot(h)
    }

    /// The root after executing the block at `slot` on top of `prev`,
    /// leaving the accounts at `accounts_root`.
    pub fn chain(prev: StateRoot, slot: u64, accounts_root: u64) -> Self {
        let mut h = fnv_u64(FNV_OFFSET, prev.0);
        h = fnv_u64(h, slot);
        h = fnv_u64(h, accounts_root);
        StateRoot(h)
    }
}

impl fmt::Display for StateRoot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root:{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(balance: u64, nonce: u64) -> Account {
        Account { balance, nonce }
    }

    #[test]
    fn get_insert_replace() {
        let mut map = AccountMap::new();
        assert_eq!(map.get(AccountId(1)), None);
        map.insert(AccountId(1), acct(10, 0));
        map.insert(AccountId(2), acct(20, 0));
        assert_eq!(map.get(AccountId(1)), Some(acct(10, 0)));
        assert_eq!(map.get(AccountId(2)), Some(acct(20, 0)));
        assert_eq!(map.len(), 2);
        map.insert(AccountId(1), acct(5, 3));
        assert_eq!(map.get(AccountId(1)), Some(acct(5, 3)));
        assert_eq!(map.len(), 2, "replace does not grow the map");
    }

    #[test]
    fn deep_collisions_split_correctly() {
        // Keys sharing 15 nibbles force the maximum-depth split.
        let a = 0xAAAA_AAAA_AAAA_AAA0;
        let b = 0xAAAA_AAAA_AAAA_AAA7;
        let mut map = AccountMap::new();
        map.insert(AccountId(a), acct(1, 0));
        map.insert(AccountId(b), acct(2, 0));
        assert_eq!(map.get(AccountId(a)), Some(acct(1, 0)));
        assert_eq!(map.get(AccountId(b)), Some(acct(2, 0)));
        assert_eq!(map.get(AccountId(a + 1)), None);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn root_hash_is_insertion_order_independent() {
        let ids = [3u64, 0x8000_0000_0000_0000, 17, 0xFFFF_FFFF_FFFF_FFFF, 4, 5];
        let mut fwd = AccountMap::new();
        for (i, id) in ids.iter().enumerate() {
            fwd.insert(AccountId(*id), acct(i as u64 + 1, i as u64));
        }
        let mut rev = AccountMap::new();
        for (i, id) in ids.iter().enumerate().rev() {
            rev.insert(AccountId(*id), acct(i as u64 + 1, i as u64));
        }
        assert_eq!(fwd.root_hash(), rev.root_hash());
        assert_eq!(fwd.entries(), rev.entries());
    }

    #[test]
    fn root_hash_is_content_sensitive() {
        let mut a = AccountMap::new();
        a.insert(AccountId(1), acct(10, 0));
        let mut b = a.clone();
        assert_eq!(a.root_hash(), b.root_hash());
        b.insert(AccountId(1), acct(10, 1));
        assert_ne!(a.root_hash(), b.root_hash(), "nonce bump changes the digest");
        let empty = AccountMap::new();
        assert_ne!(a.root_hash(), empty.root_hash());
        assert_eq!(empty.root_hash(), AccountMap::new().root_hash());
    }

    #[test]
    fn snapshots_share_structure() {
        let mut live = AccountMap::new();
        for id in 0..100u64 {
            live.insert(AccountId(id), acct(id, 0));
        }
        let snap = live.clone();
        let snap_root = snap.root_hash();
        for id in 0..100u64 {
            live.insert(AccountId(id), acct(id * 2, 1));
        }
        assert_eq!(snap.root_hash(), snap_root, "snapshot is immutable");
        assert_ne!(live.root_hash(), snap_root);
        assert_eq!(snap.total_balance(), (0..100u64).map(u128::from).sum::<u128>());
    }

    #[test]
    fn entries_are_sorted_by_id() {
        let mut map = AccountMap::new();
        for id in [9u64, 1, 0xF000_0000_0000_0000, 42, 3] {
            map.insert(AccountId(id), acct(1, 0));
        }
        let ids: Vec<u64> = map.entries().iter().map(|(id, _)| id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn chained_roots_are_sticky() {
        let genesis = StateRoot::genesis(&AccountMap::new());
        let a1 = StateRoot::chain(genesis, 1, 100);
        let b1 = StateRoot::chain(genesis, 1, 101);
        assert_ne!(a1, b1);
        // Same accounts from here on: the divergence persists anyway.
        let a2 = StateRoot::chain(a1, 2, 500);
        let b2 = StateRoot::chain(b1, 2, 500);
        assert_ne!(a2, b2, "one divergent block poisons every later root");
    }
}
