//! Deterministic transfer execution over the finalized chain.

use std::fmt;

use tetrabft_wire::Wire;

use crate::account::{Account, AccountId};
use crate::state::{AccountMap, StateRoot};
use crate::txn::Transfer;

/// Why a transaction in a finalized block did not execute.
///
/// Rejection is part of the deterministic state machine: every replica
/// rejects the same transactions for the same reasons, and a rejected
/// transaction leaves the accounts — and therefore the state root —
/// untouched. (Admission filters the static failures at the mempool door,
/// but a Byzantine leader can still pack anything into a block, so
/// execution re-checks everything.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The payload is not a canonical [`Transfer`] encoding.
    Malformed,
    /// `amount == 0`: moves nothing, burns a nonce — refused instead.
    ZeroAmount,
    /// `from == to`: a transfer must move funds between distinct accounts.
    SelfTransfer,
    /// The transfer's nonce is not the paying account's current nonce —
    /// a replay (got < expected) or a gap (got > expected).
    BadNonce {
        /// The account's current nonce.
        expected: u64,
        /// The nonce the transfer carried.
        got: u64,
    },
    /// The paying account holds less than the transfer amount.
    Overdraft {
        /// Funds available.
        balance: u64,
        /// Funds the transfer tried to move.
        amount: u64,
    },
    /// Crediting the receiver would overflow its `u64` balance.
    Overflow,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Malformed => write!(f, "not a canonical transfer encoding"),
            ExecError::ZeroAmount => write!(f, "zero-amount transfer"),
            ExecError::SelfTransfer => write!(f, "self-paying transfer"),
            ExecError::BadNonce { expected, got } => {
                write!(f, "bad nonce: account is at {expected}, transfer carries {got}")
            }
            ExecError::Overdraft { balance, amount } => {
                write!(f, "overdraft: balance {balance} < amount {amount}")
            }
            ExecError::Overflow => write!(f, "receiver balance would overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What executing one finalized block did to the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockReceipt {
    /// The (global) slot of the executed block.
    pub slot: u64,
    /// Transactions that applied.
    pub applied: usize,
    /// Transactions that did not, with their in-block index and reason.
    pub rejected: Vec<(usize, ExecError)>,
    /// The chained state root after this block.
    pub root: StateRoot,
}

/// The deterministic account state machine: folds finalized blocks into
/// the [`AccountMap`] and chains a [`StateRoot`] per block.
///
/// Executing the same finalized stream from the same genesis always
/// produces the same roots — that is the cross-check replicas rely on to
/// surface divergence ([`crate::StateRootMismatch`]).
///
/// # Examples
///
/// ```
/// use tetrabft_ledger::{AccountId, Ledger, Transfer};
/// use tetrabft_multishot::Transaction;
///
/// let mut ledger = Ledger::new([(AccountId(1), 100)]);
/// let pay = Transfer { from: AccountId(1), to: AccountId(2), amount: 30, nonce: 0 };
/// let receipt = ledger.apply_block(1, &[pay.canonical_bytes()]);
/// assert_eq!(receipt.applied, 1);
/// assert_eq!(ledger.account(AccountId(2)).balance, 30);
/// assert_eq!(ledger.account(AccountId(1)).nonce, 1);
/// // A replay of the same transfer rejects without touching the root.
/// let before = ledger.root();
/// let receipt = ledger.apply_block(2, &[pay.canonical_bytes()]);
/// assert_eq!(receipt.applied, 0);
/// assert_ne!(ledger.root(), before, "the root still chains over the block");
/// assert_eq!(ledger.account(AccountId(2)).balance, 30);
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    accounts: AccountMap,
    height: u64,
    root: StateRoot,
}

impl Ledger {
    /// A ledger at height 0 holding the genesis allocation (all nonces 0).
    /// Later entries for a repeated account id replace earlier ones.
    pub fn new(genesis: impl IntoIterator<Item = (AccountId, u64)>) -> Self {
        let mut accounts = AccountMap::new();
        for (id, balance) in genesis {
            accounts.insert(id, Account::with_balance(balance));
        }
        let root = StateRoot::genesis(&accounts);
        Ledger { accounts, height: 0, root }
    }

    /// Executes the block at `slot` — `height + 1`, finalized streams are
    /// gapless — applying each transaction in order and chaining the root.
    ///
    /// # Panics
    ///
    /// Panics if `slot != height + 1`: feeding blocks out of order is a
    /// driver bug, not a runtime condition.
    pub fn apply_block(&mut self, slot: u64, txs: &[Vec<u8>]) -> BlockReceipt {
        assert_eq!(
            slot,
            self.height + 1,
            "blocks must be applied in slot order (at height {})",
            self.height
        );
        let mut applied = 0;
        let mut rejected = Vec::new();
        for (i, bytes) in txs.iter().enumerate() {
            match self.apply_tx(bytes) {
                Ok(()) => applied += 1,
                Err(e) => rejected.push((i, e)),
            }
        }
        self.height = slot;
        self.root = StateRoot::chain(self.root, slot, self.accounts.root_hash());
        BlockReceipt { slot, applied, rejected, root: self.root }
    }

    /// One transaction: all checks first, then the mutation — a rejected
    /// transaction leaves the accounts bit-identical.
    fn apply_tx(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
        let t = Transfer::from_bytes(bytes).map_err(|_| ExecError::Malformed)?;
        if t.amount == 0 {
            return Err(ExecError::ZeroAmount);
        }
        if t.from == t.to {
            return Err(ExecError::SelfTransfer);
        }
        let mut from = self.accounts.get(t.from).unwrap_or_default();
        if t.nonce != from.nonce {
            return Err(ExecError::BadNonce { expected: from.nonce, got: t.nonce });
        }
        if from.balance < t.amount {
            return Err(ExecError::Overdraft { balance: from.balance, amount: t.amount });
        }
        let mut to = self.accounts.get(t.to).unwrap_or_default();
        let credited = to.balance.checked_add(t.amount).ok_or(ExecError::Overflow)?;
        from.balance -= t.amount;
        from.nonce += 1;
        to.balance = credited;
        self.accounts.insert(t.from, from);
        self.accounts.insert(t.to, to);
        Ok(())
    }

    /// The account state (missing accounts read as zero/zero).
    pub fn account(&self, id: AccountId) -> Account {
        self.accounts.get(id).unwrap_or_default()
    }

    /// The persistent account map — `Clone` it for an O(1) snapshot.
    pub fn accounts(&self) -> &AccountMap {
        &self.accounts
    }

    /// Number of blocks executed.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The chained state root after the last executed block.
    pub fn root(&self) -> StateRoot {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrabft_multishot::Transaction;

    fn bytes(from: u64, to: u64, amount: u64, nonce: u64) -> Vec<u8> {
        Transfer { from: AccountId(from), to: AccountId(to), amount, nonce }.canonical_bytes()
    }

    #[test]
    fn valid_sequence_moves_funds_and_nonces() {
        let mut ledger = Ledger::new([(AccountId(1), 100), (AccountId(2), 50)]);
        let receipt =
            ledger.apply_block(1, &[bytes(1, 2, 10, 0), bytes(2, 3, 60, 0), bytes(1, 3, 5, 1)]);
        assert_eq!(receipt.applied, 3);
        assert!(receipt.rejected.is_empty());
        assert_eq!(ledger.account(AccountId(1)), Account { balance: 85, nonce: 2 });
        assert_eq!(ledger.account(AccountId(2)), Account { balance: 0, nonce: 1 });
        assert_eq!(ledger.account(AccountId(3)), Account { balance: 65, nonce: 0 });
        assert_eq!(ledger.accounts().total_balance(), 150);
    }

    #[test]
    fn every_rejection_reason_fires_and_preserves_state() {
        let mut ledger = Ledger::new([(AccountId(1), 100)]);
        let account_digest = ledger.accounts().root_hash();
        let receipt = ledger.apply_block(
            1,
            &[
                b"garbage".to_vec(), // Malformed
                bytes(1, 2, 0, 0),   // ZeroAmount
                bytes(1, 1, 5, 0),   // SelfTransfer
                bytes(1, 2, 5, 7),   // BadNonce (gap)
                bytes(1, 2, 200, 0), // Overdraft
                bytes(9, 2, 1, 0),   // Overdraft from an empty account
            ],
        );
        assert_eq!(receipt.applied, 0);
        assert_eq!(
            receipt.rejected,
            vec![
                (0, ExecError::Malformed),
                (1, ExecError::ZeroAmount),
                (2, ExecError::SelfTransfer),
                (3, ExecError::BadNonce { expected: 0, got: 7 }),
                (4, ExecError::Overdraft { balance: 100, amount: 200 }),
                (5, ExecError::Overdraft { balance: 0, amount: 1 }),
            ]
        );
        assert_eq!(ledger.accounts().root_hash(), account_digest, "rejects never touch accounts");
    }

    #[test]
    fn replay_rejects_with_bad_nonce() {
        let mut ledger = Ledger::new([(AccountId(1), 100)]);
        let pay = bytes(1, 2, 10, 0);
        assert_eq!(ledger.apply_block(1, std::slice::from_ref(&pay)).applied, 1);
        let receipt = ledger.apply_block(2, &[pay]);
        assert_eq!(receipt.rejected, vec![(0, ExecError::BadNonce { expected: 1, got: 0 })]);
    }

    #[test]
    fn credit_overflow_rejects() {
        let mut ledger = Ledger::new([(AccountId(1), u64::MAX), (AccountId(2), u64::MAX)]);
        let receipt = ledger.apply_block(1, &[bytes(1, 2, 1, 0)]);
        assert_eq!(receipt.rejected, vec![(0, ExecError::Overflow)]);
        assert_eq!(ledger.account(AccountId(1)).nonce, 0, "failed transfer burns no nonce");
    }

    #[test]
    fn identical_streams_produce_identical_roots() {
        let run = || {
            let mut ledger = Ledger::new([(AccountId(1), 1_000), (AccountId(2), 1_000)]);
            let mut roots = Vec::new();
            roots.push(ledger.root());
            for slot in 1..=5u64 {
                let receipt = ledger
                    .apply_block(slot, &[bytes(1, 2, slot, slot - 1), bytes(2, 1, 1, slot - 1)]);
                roots.push(receipt.root);
            }
            roots
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "blocks must be applied in slot order")]
    fn out_of_order_blocks_panic() {
        let mut ledger = Ledger::new([]);
        ledger.apply_block(2, &[]);
    }
}
