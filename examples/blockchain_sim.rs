//! A seven-node blockchain on pipelined Multi-shot TetraBFT: transactions
//! are submitted, one node crashes mid-run, and the chain keeps finalizing
//! one block per message delay outside the recovery windows.
//!
//! ```sh
//! cargo run --example blockchain_sim
//! ```

use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 7;
    let cfg = Config::new(n)?;
    println!("blockchain with n = {n}, f = {}\n", cfg.f());

    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::jittered(1, 3)) // mild real-world jitter
        .seed(7)
        .build_boxed(|id| {
            if id == NodeId(6) {
                // One node is down from the start — within the fault budget.
                Box::new(tetrabft_suite::sim::SilentNode::new())
            } else {
                let mut node = MultiShotNode::new(cfg, Params::new(30), id);
                for k in 0..5 {
                    node.submit_tx(format!("transfer #{k} from {id}").into_bytes()).unwrap();
                }
                Box::new(node)
            }
        });

    sim.run_until(Time(400));

    // Reconstruct node 0's chain.
    let chain: Vec<&Finalized> =
        sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| &o.output).collect();
    println!("node 0 finalized {} blocks:", chain.len());
    for fin in chain.iter().take(8) {
        println!("  slot {:>2}  {}  {} txs", fin.slot.0, fin.hash, fin.block.txs.len());
    }
    if chain.len() > 8 {
        println!("  … and {} more", chain.len() - 8);
    }

    // Consistency across all live nodes.
    for i in 1..6u16 {
        let other: Vec<_> = sim
            .outputs()
            .iter()
            .filter(|o| o.node == NodeId(i))
            .map(|o| (o.output.slot, o.output.hash))
            .collect();
        let mine: Vec<_> = chain.iter().map(|f| (f.slot, f.hash)).collect();
        let common = mine.len().min(other.len());
        assert_eq!(mine[..common], other[..common], "chains must agree");
    }
    println!("\nall live nodes agree on the common prefix ✓");

    let txs_included: usize = chain.iter().map(|f| f.block.txs.len()).sum();
    println!("{txs_included} transactions made it into the chain");
    Ok(())
}
