//! A seven-node blockchain on pipelined Multi-shot TetraBFT, now with a
//! ledger on top: typed `Transfer`s are submitted through the admission
//! hook, one node crashes mid-run, the chain keeps finalizing one block
//! per message delay outside the recovery windows, and every replica
//! executes the finalized stream into the same per-block state root.
//!
//! ```sh
//! cargo run --example blockchain_sim
//! TETRABFT_ACCOUNTS=32 TETRABFT_TXS_PER_ACCOUNT=8 cargo run --example blockchain_sim
//! ```

use tetrabft_suite::prelude::*;
use tetrabft_types::NodeId;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 7;
    let cfg = Config::new(n)?;
    let accounts = env_usize("TETRABFT_ACCOUNTS", 12).max(2) as u64;
    let txs_per_account = env_usize("TETRABFT_TXS_PER_ACCOUNT", 4) as u64;
    println!(
        "blockchain with n = {n}, f = {} — {accounts} accounts × {txs_per_account} transfers\n",
        cfg.f()
    );

    let mut sim = SimBuilder::new(n)
        .policy(LinkPolicy::jittered(1, 3)) // mild real-world jitter
        .seed(7)
        .build_boxed(|id| {
            if id == NodeId(6) {
                // One node is down from the start — within the fault budget.
                Box::new(tetrabft_suite::sim::SilentNode::new())
            } else {
                let mut node =
                    MultiShotNode::new(cfg, Params::new(30), id).with_admission(transfer_admission);
                // Each account's transfers enter at exactly one live node so
                // every transfer is included exactly once.
                for acct in (1..=accounts).filter(|a| a % 6 == id.0 as u64) {
                    for nonce in 0..txs_per_account {
                        let tx = Transfer {
                            from: AccountId(acct),
                            to: AccountId(acct % accounts + 1),
                            amount: 10,
                            nonce,
                        };
                        node.submit_tx(&tx).unwrap();
                    }
                }
                Box::new(node)
            }
        });

    sim.run_until(Time(400));

    // Reconstruct node 0's chain and execute it into account state.
    let chain: Vec<&Finalized> =
        sim.outputs().iter().filter(|o| o.node == NodeId(0)).map(|o| &o.output).collect();
    let genesis = || (1..=accounts).map(|id| (AccountId(id), 1_000u64));
    let mut replica = LedgerReplica::new(genesis());
    for fin in &chain {
        replica.push(0, fin);
    }
    println!("node 0 finalized and executed {} blocks:", chain.len());
    for receipt in replica.receipts().iter().take(8) {
        println!("  slot {:>2}  {} txs applied  {}", receipt.slot, receipt.applied, receipt.root);
    }
    if replica.receipts().len() > 8 {
        println!("  … and {} more", replica.receipts().len() - 8);
    }

    // Every live node executes its own finalized stream; the chained
    // state roots must match node 0's block for block.
    for i in 1..6u16 {
        let mut other = LedgerReplica::new(genesis());
        for o in sim.outputs().iter().filter(|o| o.node == NodeId(i)) {
            other.push(0, &o.output);
        }
        replica.cross_check(&other).expect("replicas diverged");
    }
    println!("\nall live nodes agree on every finalized state root ✓");

    let applied: usize = replica.receipts().iter().map(|r| r.applied).sum();
    let total: u128 = replica.ledger().accounts().total_balance();
    println!(
        "{applied}/{} transfers applied, supply conserved at {total}",
        accounts * txs_per_account
    );
    println!("final state root: {}", replica.root());
    Ok(())
}
