//! Quickstart: four TetraBFT nodes reach consensus in five message delays.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tetrabft_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node system tolerates f = 1 Byzantine node.
    let cfg = Config::new(4)?;
    println!("n = {}, f = {}, quorum = {}", cfg.n(), cfg.f(), cfg.quorum());

    // Each node proposes its own value; the round-robin leader of view 0
    // (node 0) gets to pick.
    let params = Params::new(100); // Δ = 100 ticks → 9Δ view timeout
    let mut sim = SimBuilder::new(4)
        .policy(LinkPolicy::synchronous(1)) // 1 tick per hop = message delays
        .build(|id| TetraNode::new(cfg, params, id, Value::from_u64(1000 + u64::from(id.0))));

    assert!(sim.run_until_outputs(4, 1_000_000), "all nodes decide");

    for decision in sim.outputs() {
        println!(
            "{} decided {} at t={} ({} message delays)",
            decision.node, decision.output, decision.time, decision.time.0
        );
    }
    let first = sim.outputs()[0].output;
    assert!(sim.outputs().iter().all(|o| o.output == first), "agreement");
    assert_eq!(sim.outputs()[0].time.0, 5, "the paper's 5-delay good case");

    println!(
        "\nTraffic: {} messages, {} bytes total — no signatures anywhere.",
        sim.metrics().total_msgs_sent(),
        sim.metrics().total_bytes_sent()
    );
    Ok(())
}
