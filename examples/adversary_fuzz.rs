//! Drive the seeded adversary fuzzer from the environment: pick the seed
//! range, cluster sizes, fault budget, and shrink budget, and get a
//! deterministic campaign report — evidence records, shrunken scripted
//! scenarios for every violation, and model-checker counterexample traces
//! for safety hits.
//!
//! ```sh
//! # Defaults: 64 seeds, n in 4..=6, at most f faulty nodes, 25% chain
//! # mode. Expected result: zero violations.
//! cargo run --release --example adversary_fuzz
//!
//! # Push past the fault budget and watch safety break, shrink, and get
//! # cross-audited by the bounded model checker:
//! TETRABFT_FUZZ_OVER_BUDGET=1 TETRABFT_FUZZ_MAX_FAULTY=2 \
//! cargo run --release --example adversary_fuzz
//!
//! # A bigger nightly-style sweep:
//! TETRABFT_FUZZ_SEEDS=1024 TETRABFT_FUZZ_SEED0=42 \
//! cargo run --release --example adversary_fuzz
//! ```

use std::time::Instant;

use tetrabft_fuzz::{run_campaign, CampaignCfg, Verdict};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let seeds = env_u64("TETRABFT_FUZZ_SEEDS", 64);
    let seed0 = env_u64("TETRABFT_FUZZ_SEED0", 0);
    let cfg = CampaignCfg {
        seeds: (seed0..seed0 + seeds).collect(),
        n_min: env_u64("TETRABFT_FUZZ_N_MIN", 4) as usize,
        n_max: env_u64("TETRABFT_FUZZ_N_MAX", 6) as usize,
        max_faulty: env_u64("TETRABFT_FUZZ_MAX_FAULTY", 1) as usize,
        over_budget: std::env::var_os("TETRABFT_FUZZ_OVER_BUDGET").is_some(),
        chain_percent: env_u64("TETRABFT_FUZZ_CHAIN_PERCENT", 25) as u32,
        max_partitions: env_u64("TETRABFT_FUZZ_MAX_PARTITIONS", 2) as usize,
        shrink_budget: env_u64("TETRABFT_FUZZ_SHRINK_BUDGET", 48) as usize,
    };

    println!(
        "fuzz campaign: {} seeds from {seed0}, n in {}..={}, max_faulty {} \
         (over-budget {}), {}% chain mode",
        cfg.seeds.len(),
        cfg.n_min,
        cfg.n_max,
        cfg.max_faulty,
        if cfg.over_budget { "allowed" } else { "off" },
        cfg.chain_percent,
    );

    let start = Instant::now();
    let report = run_campaign(&cfg);
    let elapsed = start.elapsed();

    print!("{}", report.summary());

    // Shrunken violations become ready-to-commit regression tests.
    for outcome in &report.outcomes {
        let Some(shrunk) = &outcome.shrunk else { continue };
        let name = format!("fuzz_seed_{:x}_{}", outcome.seed, outcome.report.verdict.class());
        println!("\n--- scripted scenario for seed {:#x} ---", outcome.seed);
        println!("{}", shrunk.to_rust_source(&name, &outcome.report.verdict));
    }
    for outcome in &report.outcomes {
        let Some(trace) = &outcome.mc_trace else { continue };
        println!("\n--- mc counterexample for seed {:#x} ---", outcome.seed);
        println!("{trace}");
    }

    let secs = elapsed.as_secs_f64();
    println!(
        "\n{} seeds in {:.2}s ({:.1} seeds/sec), {} violations, {} evidence records",
        report.outcomes.len(),
        secs,
        report.outcomes.len() as f64 / secs.max(1e-9),
        report.violations(),
        report.evidence_total(),
    );

    if report.violations() > 0 && !cfg.over_budget {
        // Within the fault budget every violation is a real finding; make
        // the process fail so CI catches it.
        let first = report
            .outcomes
            .iter()
            .find(|o| o.report.verdict.is_violation())
            .expect("violations() > 0");
        match &first.report.verdict {
            Verdict::Ok => unreachable!(),
            v => eprintln!("first violation: seed {:#x}: {v}", first.seed),
        }
        std::process::exit(1);
    }
}
