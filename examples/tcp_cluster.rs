//! Real deployment: a localhost TCP cluster running single-shot TetraBFT
//! and then a multi-shot blockchain — the same state machines the simulator
//! verifies, now over actual sockets with wall-clock timers.
//!
//! ```sh
//! cargo run --example tcp_cluster
//! ```

use tetrabft_net::Cluster;
use tetrabft_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = Config::new(4)?;

    println!("— single-shot consensus over TCP —");
    let started = std::time::Instant::now();
    let mut cluster = Cluster::spawn(4, |id| {
        TetraNode::new(cfg, Params::new(300), id, Value::from_u64(40 + u64::from(id.0)))
    })?;
    for _ in 0..4 {
        let (node, value) = cluster.next_output().expect("decision");
        println!("  {node} decided {value} after {:?}", started.elapsed());
    }
    drop(cluster);

    println!("\n— multi-shot blockchain over TCP —");
    let (mut chain_cluster, submitters) =
        Cluster::spawn_submitting(4, |id| MultiShotNode::new(cfg, Params::new(300), id))?;
    // Client transactions enter the running cluster through the engine's
    // submit mux — the same channel deliveries and timer firings use.
    for (i, handle) in submitters.iter().enumerate() {
        handle.submit(format!("client-tx-{i}").into_bytes()).expect("cluster is live");
    }
    let mut finalized = 0;
    while finalized < 12 {
        let (node, fin) = chain_cluster.next_output().expect("finalization");
        if node == NodeId(0) {
            println!(
                "  node 0 finalized slot {:>2} {} ({} txs)",
                fin.slot.0,
                fin.hash,
                fin.block.txs.len()
            );
            finalized += 1;
        }
    }
    println!("\n12 blocks finalized over real sockets — no cryptography involved.");
    Ok(())
}
