//! Drive the packed model checker from the environment: pick the bounds,
//! thread count, and state budget, and get the exploration report — plus a
//! pretty-printed counterexample trace whenever agreement breaks (which,
//! for the real model, is never; set `TETRABFT_MC_FORGE=1` to start from a
//! forged near-disagreement and watch the checker catch and explain it).
//!
//! ```sh
//! # Defaults: the paper instance (4 nodes / 1 Byzantine / 3 values /
//! # 5 rounds), 1M-state budget, single thread.
//! cargo run --release --example mc_explore
//!
//! # Exhaust 2 values × 2 rounds on 4 threads with a disk-backed frontier:
//! TETRABFT_MC_VALUES=2 TETRABFT_MC_ROUNDS=2 TETRABFT_MC_THREADS=4 \
//! TETRABFT_MC_BUDGET=10000000 cargo run --release --example mc_explore
//!
//! # Audit a forged disagreement and print the reconstructed trace:
//! TETRABFT_MC_FORGE=1 cargo run --release --example mc_explore
//! ```

use std::time::Instant;

use tetrabft_mc::{Explorer, ModelCfg, State};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    // ---- scenario from the environment ---------------------------------
    let paper = ModelCfg::paper();
    let cfg = ModelCfg {
        nodes: env_usize("TETRABFT_MC_NODES", paper.nodes),
        byzantine: env_usize("TETRABFT_MC_BYZANTINE", paper.byzantine),
        values: env_usize("TETRABFT_MC_VALUES", paper.values as usize) as u8,
        rounds: env_usize("TETRABFT_MC_ROUNDS", paper.rounds as usize) as u8,
    };
    let threads = env_usize("TETRABFT_MC_THREADS", 1);
    let budget = env_usize("TETRABFT_MC_BUDGET", 1_000_000);
    let frontier_mem = env_usize("TETRABFT_MC_FRONTIER_MEM", 1 << 18);
    let forge = std::env::var_os("TETRABFT_MC_FORGE").is_some();

    println!(
        "model: {} nodes / {} byzantine (angelic) / {} values / {} rounds",
        cfg.nodes, cfg.byzantine, cfg.values, cfg.rounds
    );
    println!("explorer: {threads} thread(s), budget {budget} states, trace on\n");

    let mut explorer = Explorer::new(cfg).threads(threads).trace(true).frontier_mem(frontier_mem);
    if forge {
        // Two nodes carried value 0 through all of round 0 and value 1
        // through phases 1..=3 of round 1 — two phase-4 votes short of a
        // forged disagreement. The checker finds and explains the rest.
        assert!(
            cfg.honest() >= 3 && cfg.values >= 2 && cfg.rounds >= 2,
            "forging needs ≥3 honest nodes, ≥2 values, ≥2 rounds"
        );
        let mut s = State::initial(&cfg);
        for p in 0..cfg.honest() {
            s.round[p] = 1;
        }
        for p in 0..2 {
            for phase in 1..=4 {
                s.votes[p].set(0, phase, 0);
            }
            for phase in 1..=3 {
                s.votes[p].set(1, phase, 1);
            }
        }
        println!("starting from a FORGED near-disagreement state (TETRABFT_MC_FORGE=1)\n");
        explorer = explorer.with_initial(s);
    }

    // ---- run ------------------------------------------------------------
    let started = Instant::now();
    let (report, stats) = explorer.run_with_stats(budget);
    let secs = started.elapsed().as_secs_f64();

    println!("states               {}", report.states);
    println!("transitions          {}", report.transitions);
    println!("depth                {}", report.depth);
    println!(
        "exhausted            {}",
        if report.exhausted { "yes" } else { "no (budget truncated)" }
    );
    println!("dropped discoveries  {}", report.dropped);
    println!("agreement violations {}", report.violations);
    println!("seen-set bytes       {} ({:.1} per state)", stats.seen_bytes, {
        stats.seen_bytes as f64 / report.states.max(1) as f64
    });
    println!("frontier spilled     {} states to disk", stats.spilled_states);
    println!(
        "time                 {secs:.2}s ({:.0} states/sec)",
        report.states as f64 / secs.max(1e-9)
    );

    match report.counterexample {
        Some(trace) => println!("\n{trace}"),
        None if report.violations == 0 => {
            println!("\nagreement holds in every explored state — no counterexample to print.")
        }
        None => unreachable!("tracing was on, so violations imply a trace"),
    }
}
