//! Byzantine lab: throw every attacker in `tetrabft::strategies` at the
//! protocol and watch agreement survive — the practical face of the
//! paper's Section 4 safety argument.
//!
//! ```sh
//! cargo run --example byzantine_lab
//! ```

use tetrabft::strategies::{
    EquivocatingLeader, LateCrash, LyingHistorian, StaleReplayer, VoteAmplifier,
};
use tetrabft_suite::prelude::*;

fn run_attack(
    name: &str,
    make_byz: impl Fn(Config) -> Box<dyn Node<Msg = Message, Output = Value>>,
) {
    let cfg = Config::new(4).unwrap();
    let mut agreed = 0;
    let mut runs = 0;
    for seed in 0..10 {
        let mut sim =
            SimBuilder::new(4).seed(seed).policy(LinkPolicy::jittered(1, 4)).build_boxed(|id| {
                if id == NodeId(0) {
                    make_byz(cfg)
                } else {
                    Box::new(TetraNode::new(
                        cfg,
                        Params::new(20),
                        id,
                        Value::from_u64(100 + u64::from(id.0)),
                    ))
                }
            });
        let decided = sim.run_until_outputs(3, 10_000_000);
        runs += 1;
        if decided {
            let first = sim.outputs()[0].output;
            if sim.outputs().iter().all(|o| o.output == first) {
                agreed += 1;
            } else {
                println!("  !!! AGREEMENT VIOLATED under {name} (seed {seed})");
                return;
            }
        }
    }
    println!("  {name:<22} {agreed}/{runs} runs decided, agreement in all of them ✓");
}

fn main() {
    println!("attacker occupies node 0 (the leader of view 0); f = 1 of n = 4\n");
    run_attack("equivocating leader", |cfg| {
        Box::new(EquivocatingLeader::new(cfg, Value::from_u64(1), Value::from_u64(2)))
    });
    run_attack("vote amplifier", |_| Box::new(VoteAmplifier::new()));
    run_attack("lying historian", |cfg| Box::new(LyingHistorian::new(cfg, Value::from_u64(666))));
    run_attack("stale replayer", |_| Box::new(StaleReplayer));
    run_attack("late crash", |cfg| {
        Box::new(LateCrash::new(
            TetraNode::new(cfg, Params::new(20), NodeId(0), Value::from_u64(5)),
            View(0),
        ))
    });
    println!("\nno attacker with f ≤ 1 nodes can split the decision — Theorem 1.");
}
