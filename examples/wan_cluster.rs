//! WAN-conditioned blockchain cluster: topology and link policy come from
//! the environment, and per-slot commit latencies are printed so the
//! responsiveness claim can be eyeballed against the injected delay.
//!
//! ```sh
//! # Defaults: 4 nodes on OS-assigned localhost ports, 30 ms WAN links.
//! cargo run --release --example wan_cluster
//!
//! # Explicit topology, custom conditioning, a scripted partition:
//! TETRABFT_TOPOLOGY="127.0.0.1:5101,127.0.0.1:5102,127.0.0.1:5103,127.0.0.1:5104" \
//! TETRABFT_LINK="delay=40,jitter=8,drop=0.001" \
//! TETRABFT_PARTITION="800..1600:0" \
//! TETRABFT_SLOTS=16 cargo run --release --example wan_cluster
//! ```

use std::time::{Duration, Instant};

use tetrabft_net::{ClusterBuilder, EdgeSpec, LinkPlan, PartitionWindow, Topology};
use tetrabft_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- scenario from the environment ---------------------------------
    let spec: EdgeSpec = match std::env::var("TETRABFT_LINK") {
        Ok(s) => s.parse()?,
        Err(_) => EdgeSpec::delay(30).with_jitter(3),
    };
    let mut plan = LinkPlan::uniform(spec);
    if let Ok(s) = std::env::var("TETRABFT_PARTITION") {
        let window: PartitionWindow = s.parse()?;
        plan = plan.partition(window);
    }
    let topology = match std::env::var("TETRABFT_TOPOLOGY") {
        Ok(s) => Some(Topology::parse(&s)?),
        Err(_) => None,
    };
    let slots: u64 =
        std::env::var("TETRABFT_SLOTS").ok().and_then(|s| s.parse().ok()).unwrap_or(12);

    let n = topology.as_ref().map_or(4, Topology::len);
    let cfg = Config::new(n)?;
    // Δ = 5 s: the 45 s view timeout towers over every injected delay, so
    // any latency printed below is the network's doing, not the timer's.
    let params = Params::new(5_000).with_max_block_txs(8);

    let mut builder = ClusterBuilder::new(n).plan(plan);
    if let Some(t) = topology {
        println!("topology: {t}");
        builder = builder.topology(t);
    } else {
        println!("topology: {n} nodes on OS-assigned localhost ports");
    }
    println!(
        "links: {} ms +{} ms jitter, drop {:.3}%\n",
        spec.delay_ms,
        spec.jitter_ms,
        spec.drop_ppm as f64 / 10_000.0
    );

    // ---- run ------------------------------------------------------------
    let started = Instant::now();
    let ((mut cluster, submitters), net) =
        builder.spawn_submitting(|id| MultiShotNode::new(cfg, params, id))?;
    for (i, handle) in submitters.iter().enumerate() {
        for t in 0..4 {
            handle.submit(format!("client-{i}-tx-{t}").into_bytes())?;
        }
    }

    println!("slot | txs | commit at (ms) | slot latency (ms)");
    let mut last_commit = started.elapsed();
    let mut seen = 0u64;
    while seen < slots {
        let Some((node, fin)) = cluster.next_output_timeout(Duration::from_secs(60)) else {
            eprintln!("no finalization within 60 s — is the partition window permanent?");
            break;
        };
        if node != NodeId(0) {
            continue;
        }
        let at = started.elapsed();
        println!(
            "{:>4} | {:>3} | {:>14} | {:>17}",
            fin.slot.0,
            fin.block.txs.len(),
            at.as_millis(),
            at.saturating_sub(last_commit).as_millis()
        );
        last_commit = at;
        seen += 1;
    }

    let stats = net.stats();
    println!(
        "\nlink layer: {} reconnects, {} frames resent, {} dropped by policy, {} shed",
        stats.reconnects, stats.frames_resent, stats.frames_dropped, stats.frames_shed
    );
    println!(
        "reactors: {} poll wakeups, send-queue depth HWM {}, {} B in / {} B out",
        stats.poll_wakeups, stats.send_queue_hwm, stats.bytes_in, stats.bytes_out
    );
    for t in net.peer_traffic() {
        println!("  peer {}: {} B in / {} B out", t.peer.0, t.bytes_in, t.bytes_out);
    }
    println!(
        "{seen} slots finalized; with a 45 s view timeout, every slot above committed at \
         network speed."
    );
    Ok(())
}
